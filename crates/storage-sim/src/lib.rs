//! # storage-sim
//!
//! The simulated storage substrate under every I/O interface in the suite:
//!
//! * [`err`] — error codes mirroring the POSIX failures the layers surface,
//! * [`faults`] — deterministic fault-injection plans (server outages,
//!   brownouts, stragglers, transient errors) applied by the PFS model,
//! * [`path`] — path normalization shared by all namespaces,
//! * [`file`] — inodes, sparse segment maps (byte-backed or synthetic
//!   pattern-backed content), and the flat namespace [`file::FileStore`],
//! * [`pfs`] — a GPFS-like parallel file system: striped data servers,
//!   metadata servers with queueing contention, per-file byte-range lock
//!   queues, and a per-node client write-behind cache,
//! * [`tenancy`] — competing-tenant load schedules the multi-tenant fleet
//!   plane installs so concurrent jobs contend for the shared NSD/MDS
//!   servers,
//! * [`node_local`] — node-local tiers (tmpfs `/dev/shm`, burst buffers),
//! * [`mounts`] — the [`mounts::StorageSystem`] that routes paths to tiers
//!   exactly as a compute node's mount table would.
//!
//! All operations are *timed*: they take the simulated instant at which the
//! calling rank issues the call and return the instant it completes, after
//! queueing on the shared resources. Contention between ranks therefore
//! emerges from call ordering, which the `hpc-cluster` engine guarantees is
//! causal.

pub mod err;
pub mod faults;
pub mod file;
pub mod mounts;
pub mod node_local;
pub mod path;
pub mod pfs;
pub mod tenancy;

pub use err::IoErr;
pub use faults::FaultPlan;
pub use file::{FileKey, FileStore, Segment};
pub use mounts::{StorageSystem, Tier};
pub use node_local::{NodeLocalConfig, NodeLocalFs};
pub use pfs::{GpfsConfig, GpfsSim};
pub use tenancy::{InterferenceSchedule, LoadWindow};
