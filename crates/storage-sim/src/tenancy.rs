//! Multi-tenant interference schedules for the shared PFS.
//!
//! On a production machine the parallel file system is never dedicated to
//! one job: every NSD data server and MDS metadata server is shared by all
//! concurrently running tenants. The fleet plane models that contention
//! with a **mean-field load schedule**: each job is simulated with a
//! piecewise-constant [`InterferenceSchedule`] describing, for every
//! window of its own timeline, how much *competing* demand the other
//! tenants place on the shared servers.
//!
//! The contention semantics follow processor sharing: a server whose
//! capacity is `C` and which carries competing demand `load × C` gives a
//! tenant an effective rate of `C / (1 + load)`, so stripe and metadata
//! service times stretch by the factor `1 + load` while the window covers
//! the operation's arrival instant. Data-path and metadata-path loads are
//! tracked separately — a metadata-storm neighbor hurts opens without
//! touching stream bandwidth, and vice versa.
//!
//! Determinism contract (mirrors [`crate::faults::FaultPlan`]):
//!
//! * the schedule is **pure data** — installing it draws nothing from any
//!   RNG stream and consumes no entropy;
//! * an *empty* schedule is bit-identical to never installing one, which
//!   is what reduces a single-tenant fleet to today's dedicated runs;
//! * factors depend only on the operation's arrival time, so replaying a
//!   trace under the same schedule reproduces the same timings exactly.

use sim_core::SimTime;
use vani_rt::{FromJson, Json, JsonError, ToJson};

/// One window of competing tenant demand on the shared servers.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadWindow {
    /// Window start (inclusive), on this job's own timeline.
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
    /// Competing data-path demand as a fraction of the aggregate NSD
    /// bandwidth (1.0 = the neighbors alone could saturate the servers).
    pub data_load: f64,
    /// Competing metadata-path demand as a fraction of the aggregate MDS
    /// service capacity.
    pub meta_load: f64,
    /// Fraction of the shared storage capacity that is actually *serving*
    /// during this window, in `(0, 1]`. The fleet's failure domains couple
    /// storage to the node pool (rack-co-located NSDs / burst buffers), so
    /// while part of the pool is down the survivors serve the same demand
    /// with less hardware: service times stretch by `1 / capacity` on top
    /// of the processor-sharing load factor. `1.0` (the default, and the
    /// only value pre-failure-domain schedules carry) is bit-identical to
    /// the capacity-unaware model.
    pub capacity: f64,
}

impl LoadWindow {
    /// Whether `t` falls inside the window.
    pub fn covers(&self, t: SimTime) -> bool {
        self.from <= t && t < self.until
    }
}

/// The complete interference schedule one tenant observes during its run.
/// Pure data; see the module docs for semantics and determinism.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct InterferenceSchedule {
    /// Competing-load windows. Windows may overlap; loads add.
    pub windows: Vec<LoadWindow>,
}

impl InterferenceSchedule {
    /// An empty schedule (a dedicated machine).
    pub fn none() -> Self {
        InterferenceSchedule::default()
    }

    /// Whether the schedule carries no load at all (and no degraded
    /// capacity): an empty schedule is bit-identical to never installing
    /// one, so a window whose only effect is `capacity < 1` counts as load.
    pub fn is_empty(&self) -> bool {
        self.windows
            .iter()
            .all(|w| w.data_load <= 0.0 && w.meta_load <= 0.0 && w.capacity >= 1.0)
    }

    /// Add a window of competing demand (builder style).
    pub fn with_window(
        mut self,
        from: SimTime,
        until: SimTime,
        data_load: f64,
        meta_load: f64,
    ) -> Self {
        self.windows.push(LoadWindow {
            from,
            until,
            data_load,
            meta_load,
            capacity: 1.0,
        });
        self
    }

    /// Add a window of competing demand served by a degraded storage pool
    /// (builder style). `capacity` is clamped into `(0, 1]`.
    pub fn with_window_capacity(
        mut self,
        from: SimTime,
        until: SimTime,
        data_load: f64,
        meta_load: f64,
        capacity: f64,
    ) -> Self {
        let capacity = if capacity.is_finite() {
            capacity.clamp(1e-6, 1.0)
        } else {
            1.0
        };
        self.windows.push(LoadWindow {
            from,
            until,
            data_load,
            meta_load,
            capacity,
        });
        self
    }

    /// Surviving-capacity fraction at instant `t`: the *minimum* capacity
    /// over covering windows (overlapping failure domains do not restore
    /// hardware), `1.0` when no degraded window covers `t`.
    fn capacity_at(&self, t: SimTime) -> f64 {
        self.windows
            .iter()
            .filter(|w| w.covers(t) && w.capacity < 1.0)
            .map(|w| w.capacity)
            .fold(1.0, f64::min)
    }

    /// Data-path service-time stretch factor at instant `t`:
    /// `(1 + Σ data_load) / capacity` over covering windows; `1.0` on a
    /// dedicated, fully healthy machine.
    pub fn data_factor(&self, t: SimTime) -> f64 {
        (1.0 + self
            .windows
            .iter()
            .filter(|w| w.covers(t) && w.data_load > 0.0)
            .map(|w| w.data_load)
            .sum::<f64>())
            / self.capacity_at(t)
    }

    /// Metadata-path service-time stretch factor at instant `t`.
    pub fn meta_factor(&self, t: SimTime) -> f64 {
        (1.0 + self
            .windows
            .iter()
            .filter(|w| w.covers(t) && w.meta_load > 0.0)
            .map(|w| w.meta_load)
            .sum::<f64>())
            / self.capacity_at(t)
    }

    /// Mean data-path load over `[SimTime::ZERO, horizon)`, weighted by
    /// window duration — the "how noisy were my neighbors" scalar the
    /// fleet reports aggregate. Zero for an empty horizon.
    pub fn mean_data_load(&self, horizon: SimTime) -> f64 {
        let h = horizon.as_nanos();
        if h == 0 {
            return 0.0;
        }
        let mut weighted = 0.0f64;
        for w in &self.windows {
            if w.data_load <= 0.0 {
                continue;
            }
            let lo = w.from.as_nanos().min(h);
            let hi = w.until.as_nanos().min(h);
            if hi > lo {
                weighted += w.data_load * (hi - lo) as f64;
            }
        }
        weighted / h as f64
    }
}

impl ToJson for LoadWindow {
    fn to_json(&self) -> Json {
        // `capacity` is emitted only when degraded so pre-failure-domain
        // schedules serialize byte-identically to before the field existed.
        let mut fields = vec![
            ("from", self.from.to_json()),
            ("until", self.until.to_json()),
            ("data_load", self.data_load.to_json()),
            ("meta_load", self.meta_load.to_json()),
        ];
        if self.capacity < 1.0 {
            fields.push(("capacity", self.capacity.to_json()));
        }
        Json::obj(fields)
    }
}

impl FromJson for LoadWindow {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        let capacity = match j.get("capacity") {
            Some(c) => f64::from_json(c)?,
            None => 1.0,
        };
        Ok(LoadWindow {
            from: j.decode_field("from")?,
            until: j.decode_field("until")?,
            data_load: j.decode_field("data_load")?,
            meta_load: j.decode_field("meta_load")?,
            capacity,
        })
    }
}

impl ToJson for InterferenceSchedule {
    fn to_json(&self) -> Json {
        Json::obj([("windows", self.windows.to_json())])
    }
}

impl FromJson for InterferenceSchedule {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(InterferenceSchedule {
            windows: j.decode_field("windows")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn empty_schedule_has_unit_factors() {
        let s = InterferenceSchedule::none();
        assert!(s.is_empty());
        assert_eq!(s.data_factor(t(5)), 1.0);
        assert_eq!(s.meta_factor(t(5)), 1.0);
        assert_eq!(s.mean_data_load(t(100)), 0.0);
    }

    #[test]
    fn zero_load_windows_count_as_empty() {
        let s = InterferenceSchedule::none().with_window(t(0), t(10), 0.0, 0.0);
        assert!(s.is_empty());
        assert_eq!(s.data_factor(t(5)), 1.0);
    }

    #[test]
    fn overlapping_windows_add_their_loads() {
        let s = InterferenceSchedule::none()
            .with_window(t(0), t(10), 0.5, 0.0)
            .with_window(t(5), t(20), 1.0, 0.25);
        assert_eq!(s.data_factor(t(2)), 1.5);
        assert_eq!(s.data_factor(t(7)), 2.5);
        assert_eq!(s.data_factor(t(15)), 2.0);
        assert_eq!(s.data_factor(t(25)), 1.0);
        assert_eq!(s.meta_factor(t(2)), 1.0);
        assert_eq!(s.meta_factor(t(7)), 1.25);
    }

    #[test]
    fn window_bounds_are_half_open() {
        let s = InterferenceSchedule::none().with_window(t(10), t(20), 1.0, 1.0);
        assert_eq!(s.data_factor(t(10)), 2.0);
        assert_eq!(s.data_factor(t(20)), 1.0);
    }

    #[test]
    fn mean_load_is_duration_weighted_and_clamped_to_horizon() {
        let s = InterferenceSchedule::none()
            .with_window(t(0), t(50), 1.0, 0.0)
            .with_window(t(50), t(200), 2.0, 0.0);
        // Over a 100 s horizon: 50 s at 1.0 + 50 s at 2.0 = mean 1.5.
        assert!((s.mean_data_load(t(100)) - 1.5).abs() < 1e-12);
        assert_eq!(s.mean_data_load(SimTime::ZERO), 0.0);
    }

    #[test]
    fn json_round_trip_preserves_schedule() {
        let s = InterferenceSchedule::none()
            .with_window(t(3), t(9), 0.75, 0.125)
            .with_window(t(10), t(11), 2.0, 0.0);
        let j = s.to_json();
        let back = InterferenceSchedule::from_json(&j).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn degraded_capacity_stretches_both_paths() {
        let s = InterferenceSchedule::none()
            .with_window(t(0), t(10), 0.5, 0.0)
            .with_window_capacity(t(5), t(20), 0.0, 0.0, 0.8);
        assert!(!s.is_empty());
        // Healthy region: pure processor sharing.
        assert_eq!(s.data_factor(t(2)), 1.5);
        // Degraded overlap: (1 + 0.5) / 0.8.
        assert!((s.data_factor(t(7)) - 1.5 / 0.8).abs() < 1e-12);
        // Degraded, no competing load: 1 / 0.8 on both paths.
        assert!((s.data_factor(t(15)) - 1.25).abs() < 1e-12);
        assert!((s.meta_factor(t(15)) - 1.25).abs() < 1e-12);
        assert_eq!(s.data_factor(t(25)), 1.0);
    }

    #[test]
    fn overlapping_capacity_windows_take_the_minimum() {
        let s = InterferenceSchedule::none()
            .with_window_capacity(t(0), t(10), 0.0, 0.0, 0.9)
            .with_window_capacity(t(5), t(10), 0.0, 0.0, 0.5);
        assert!((s.data_factor(t(2)) - 1.0 / 0.9).abs() < 1e-12);
        assert!((s.data_factor(t(7)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn full_capacity_window_stays_empty_and_serializes_unchanged() {
        let s = InterferenceSchedule::none().with_window_capacity(t(0), t(10), 0.0, 0.0, 1.0);
        assert!(s.is_empty());
        // Full-capacity windows serialize without the field, so old readers
        // and old byte-for-byte snapshots are unaffected.
        let legacy = InterferenceSchedule::none().with_window(t(0), t(10), 0.0, 0.0);
        assert_eq!(s.to_json().render(), legacy.to_json().render());
    }

    #[test]
    fn json_round_trip_preserves_capacity() {
        let s = InterferenceSchedule::none().with_window_capacity(t(3), t(9), 0.75, 0.125, 0.625);
        let back = InterferenceSchedule::from_json(&s.to_json()).unwrap();
        assert_eq!(s, back);
    }
}
