//! Crash sweep: the checkpoint-interval vs time-to-solution tradeoff.
//!
//! CosmoFlow is run over a grid of checkpoint counts × injected job
//! crashes. Each crash kills the whole job (MPI semantics); the recovery
//! supervisor in `exemplar_workloads::harness` relaunches it from the
//! last *durable* model checkpoint after a fixed restart delay. More
//! checkpoints cost more overhead while the job is healthy, but bound
//! the work a crash can destroy — the classic tradeoff this sweep's
//! figure renders, surfaced via `repro -- crash-sweep`.
//!
//! Determinism: scenario seeds are drawn at registration, crash times
//! are anchored to the *healthy* baseline makespan of the same
//! checkpoint configuration (computed in wave 1), and the grid is
//! assembled in registration order — the report is byte-identical at
//! any worker count with either driver.

use crate::analyzer::Analysis;
use crate::sweep::{Driver, ScenarioSet, SweepReport};
use exemplar_workloads::cosmoflow;
use sim_core::SimTime;
use storage_sim::FaultPlan;

/// Checkpoint counts swept (more checkpoints = shorter interval).
pub const CKPT_COUNTS: [u32; 4] = [1, 2, 4, 8];
/// Crash counts injected per checkpoint configuration.
pub const CRASH_COUNTS: [u32; 3] = [0, 1, 2];

/// CosmoFlow at `scale` writing `n_ckpts` model checkpoints, under
/// `faults` (which may include whole-job crash events).
pub(crate) fn run_cosmo_ckpt(
    scale: f64,
    seed: u64,
    n_ckpts: u32,
    faults: FaultPlan,
) -> exemplar_workloads::WorkloadRun {
    let mut p = cosmoflow::CosmoflowParams::scaled(scale);
    p.n_ckpts = n_ckpts;
    p.faults = faults;
    cosmoflow::run_with(p, scale, seed)
}

/// The crash plan for one grid cell: `crashes` rank-0 kills spread over
/// the healthy makespan `healthy_ns`, each shifted past the previous
/// crash's restart delay so every kill lands inside a live epoch.
pub(crate) fn crash_plan(crashes: u32, healthy_ns: u64) -> FaultPlan {
    let delay = exemplar_workloads::harness::restart_delay().as_nanos();
    let mut plan = FaultPlan::none();
    for k in 1..=crashes as u64 {
        let at = k * healthy_ns / (crashes as u64 + 1) + (k - 1) * delay;
        plan = plan.with_rank_crash(0, SimTime::from_nanos(at));
    }
    plan
}

/// One grid cell of the sweep.
#[derive(Debug, Clone)]
pub struct CrashPoint {
    /// Model checkpoints the run writes while healthy.
    pub n_ckpts: u32,
    /// Whole-job crashes injected.
    pub crashes: u32,
    /// Time to solution (engine makespan), seconds.
    pub makespan: f64,
    /// Restart epochs the job went through.
    pub restarts: u64,
    /// Work destroyed by crashes (rollback to last checkpoint), seconds.
    pub lost: f64,
    /// Wall time spent writing checkpoints, seconds.
    pub ckpt_overhead: f64,
    /// Wall time spent in restart delays, seconds.
    pub recovery: f64,
}

fn point(n_ckpts: u32, crashes: u32, a: &Analysis) -> CrashPoint {
    CrashPoint {
        n_ckpts,
        crashes,
        makespan: a.job_time.as_secs_f64(),
        restarts: a.restart_count(),
        lost: a.time_lost_to_crashes(),
        ckpt_overhead: a.checkpoint_overhead(),
        recovery: a.recovery_seconds(),
    }
}

/// The full grid plus the supervision manifest (empty when every
/// scenario succeeded, which the tests require).
#[derive(Debug, Clone)]
pub struct CrashSweepReport {
    /// Grid cells in `(n_ckpts, crashes)` registration order.
    pub points: Vec<CrashPoint>,
    /// Failure manifest from the supervised wave, if any scenario died.
    pub manifest: Option<String>,
}

impl CrashSweepReport {
    /// The cell for `(n_ckpts, crashes)`, if it survived supervision.
    pub fn cell(&self, n_ckpts: u32, crashes: u32) -> Option<&CrashPoint> {
        self.points
            .iter()
            .find(|p| p.n_ckpts == n_ckpts && p.crashes == crashes)
    }

    /// Render the tradeoff figure as `repro -- crash-sweep` prints it.
    pub fn render(&self) -> String {
        let mut out =
            String::from("== Crash sweep: checkpoint interval vs time-to-solution (CosmoFlow)\n");
        out.push_str(
            "ckpts | crashes | makespan (s) | restarts | work lost (s) | ckpt ovhd (s) | recovery (s)\n",
        );
        out.push_str(
            "------+---------+--------------+----------+---------------+---------------+-------------\n",
        );
        for p in &self.points {
            out.push_str(&format!(
                "{:>5} | {:>7} | {:>12.3} | {:>8} | {:>13.3} | {:>13.3} | {:>12.3}\n",
                p.n_ckpts, p.crashes, p.makespan, p.restarts, p.lost, p.ckpt_overhead, p.recovery
            ));
        }

        // ASCII tradeoff figure: time to solution under the heaviest
        // crash load, one bar per checkpoint count. Sparse checkpoints
        // pay in rolled-back work, dense checkpoints in overhead.
        let worst = *CRASH_COUNTS.iter().max().unwrap();
        let bars: Vec<&CrashPoint> = CKPT_COUNTS
            .iter()
            .filter_map(|&n| self.cell(n, worst))
            .collect();
        let max = bars.iter().map(|p| p.makespan).fold(0.0_f64, f64::max);
        if max > 0.0 {
            out.push_str(&format!("\ntime to solution with {worst} crash(es):\n"));
            for p in bars {
                let w = ((p.makespan / max) * 50.0).round() as usize;
                out.push_str(&format!(
                    "{:>2} ckpts |{:<50}| {:.1} s\n",
                    p.n_ckpts,
                    "#".repeat(w.max(1)),
                    p.makespan
                ));
            }
        }
        if let Some(m) = &self.manifest {
            out.push_str("\n");
            out.push_str(m);
        }
        out
    }
}

/// Run the sweep: wave 1 measures the healthy baseline per checkpoint
/// count, wave 2 injects crashes anchored to those baselines. Wave 2
/// runs supervised so one pathological cell cannot poison the grid.
pub fn crash_sweep(scale: f64, seed: u64, driver: Driver) -> CrashSweepReport {
    // Wave 1: healthy baselines (the crashes = 0 column).
    let mut w1 = ScenarioSet::new(seed);
    for n in CKPT_COUNTS {
        w1.add(format!("cosmo/ckpts-{n}/healthy"), move |_| {
            Analysis::from_run(&run_cosmo_ckpt(scale, seed, n, FaultPlan::none()))
        });
    }
    let healthy = w1.run(driver);

    // Wave 2: the crashed cells, anchored to wave 1's makespans.
    let mut w2 = ScenarioSet::new(seed ^ 2);
    let mut cells = Vec::new();
    for (i, n) in CKPT_COUNTS.into_iter().enumerate() {
        let healthy_ns = healthy[i].job_time.as_nanos();
        for r in CRASH_COUNTS.into_iter().filter(|&r| r > 0) {
            cells.push((n, r));
            let plan = crash_plan(r, healthy_ns);
            w2.add(format!("cosmo/ckpts-{n}/crashes-{r}"), move |_| {
                Analysis::from_run(&run_cosmo_ckpt(scale, seed, n, plan.clone()))
            });
        }
    }
    let report: SweepReport<Analysis> = w2.run_supervised(driver, 2);

    let mut points = Vec::new();
    let mut crashed = report.results.iter();
    for (i, n) in CKPT_COUNTS.into_iter().enumerate() {
        points.push(point(n, 0, &healthy[i]));
        for r in CRASH_COUNTS.into_iter().filter(|&r| r > 0) {
            if let Ok(a) = crashed.next().expect("grid arity") {
                points.push(point(n, r, a));
            }
        }
    }
    let manifest = if report.is_clean() {
        None
    } else {
        Some(report.manifest())
    };
    CrashSweepReport { points, manifest }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_sweep() -> CrashSweepReport {
        crash_sweep(0.02, 7, Driver::Parallel)
    }

    #[test]
    fn crashes_cost_time_and_checkpoints_bound_the_loss() {
        let r = quick_sweep();
        assert!(r.manifest.is_none(), "no cell may fail: {:?}", r.manifest);
        assert_eq!(r.points.len(), CKPT_COUNTS.len() * CRASH_COUNTS.len());

        for &n in &CKPT_COUNTS {
            let ok = r.cell(n, 0).unwrap();
            let bad = r.cell(n, 2).unwrap();
            assert_eq!(ok.restarts, 0);
            assert_eq!(bad.restarts, 2, "both kills must land (ckpts={n})");
            assert!(
                bad.makespan > ok.makespan,
                "crashes must cost wall time (ckpts={n}): {:.3} vs {:.3}",
                bad.makespan,
                ok.makespan
            );
            assert!(bad.recovery > 0.0 && bad.lost >= 0.0);
        }

        // Denser checkpoints bound the work a crash destroys.
        let sparse = r.cell(CKPT_COUNTS[0], 2).unwrap();
        let dense = r.cell(*CKPT_COUNTS.last().unwrap(), 2).unwrap();
        assert!(
            dense.lost <= sparse.lost,
            "8 ckpts must lose no more work than 1 ckpt: {:.3} vs {:.3}",
            dense.lost,
            sparse.lost
        );
    }

    #[test]
    fn sweep_is_identical_across_drivers() {
        let a = crash_sweep(0.02, 7, Driver::Sequential);
        let b = quick_sweep();
        assert_eq!(a.render(), b.render());
    }

    #[test]
    fn render_draws_the_tradeoff_figure() {
        let r = quick_sweep();
        let s = r.render();
        assert!(s.contains("checkpoint interval vs time-to-solution"));
        assert!(s.contains("time to solution with 2 crash(es):"));
        assert!(s.contains("8 ckpts |"));
    }

    #[test]
    fn crash_plan_spreads_kills_across_epochs() {
        let plan = crash_plan(2, 3_000_000_000);
        let ev = plan.crashes_sorted();
        assert_eq!(ev.len(), 2);
        assert!(ev[0].at < ev[1].at);
        // Second kill lands past the first restart delay.
        let delay = exemplar_workloads::harness::restart_delay().as_nanos();
        assert!(ev[1].at.as_nanos() >= ev[0].at.as_nanos() + delay);
    }
}
