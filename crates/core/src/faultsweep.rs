//! Fault-injection sweep: how resilience attributes separate workloads.
//!
//! Three experiments, driven by the deterministic fault plane in
//! `storage-sim::faults` and surfaced via `repro -- fault-sweep`:
//!
//! 1. **MDS brownout** — the same metadata-server slowdown applied to
//!    metadata-bound CosmoFlow (thousands of per-sample opens) and
//!    data-bound HACC (one file per process, bulk writes). CosmoFlow's
//!    I/O time degrades far more — the attribute-level signature
//!    (meta-op share) predicts fault sensitivity.
//! 2. **NSD outage** — a single data server down for the whole transfer,
//!    measured as aggregate-bandwidth degradation on the PFS directly.
//!    Survivors absorb the dead server's stripes, so the slowdown is
//!    roughly the server's capacity share plus contention.
//! 3. **Shm shielding** — CosmoFlow baseline vs preload-to-shm under the
//!    same PFS fault plan. Once the dataset is node-local, training reads
//!    no longer touch the faulted PFS, so the reconfiguration that wins
//!    Figure 7 also buys fault isolation.

use crate::analyzer::Analysis;
use exemplar_workloads::{cosmoflow, hacc};
use hpc_cluster::topology::NodeId;
use sim_core::units::{GIB, MIB};
use sim_core::{Dur, SimTime};
use storage_sim::{FaultPlan, GpfsConfig, GpfsSim};

/// A brownout window long enough to cover any simulated run.
pub(crate) fn whole_run() -> SimTime {
    SimTime::from_secs(1_000_000_000)
}

/// The experiment-1 fault plan: `slowdown`× metadata service time for the
/// whole run.
pub(crate) fn mds_plan(slowdown: f64) -> FaultPlan {
    FaultPlan::none().with_mds_brownout(SimTime::ZERO, whole_run(), slowdown)
}

/// The experiment-3 fault plan: a 4× NSD brownout from `from` onward plus
/// a 2 % transient data-error rate throughout. The rate stays low enough
/// that the retry middleware (5 attempts) always absorbs it — no run may
/// fail.
pub(crate) fn shield_plan(from: SimTime) -> FaultPlan {
    FaultPlan::none()
        .with_nsd_brownout(from, whole_run(), 4.0)
        .with_error_rates(0.02, 0.0)
}

/// CosmoFlow at `scale` under `faults` (baseline GPFS data path).
pub(crate) fn run_cosmo(
    scale: f64,
    seed: u64,
    faults: FaultPlan,
) -> exemplar_workloads::WorkloadRun {
    let mut p = cosmoflow::CosmoflowParams::scaled(scale);
    p.faults = faults;
    cosmoflow::run_with(p, scale, seed)
}

/// CosmoFlow preload-to-shm variant at `scale` under `faults`.
pub(crate) fn run_cosmo_preload(
    scale: f64,
    seed: u64,
    faults: FaultPlan,
) -> exemplar_workloads::WorkloadRun {
    let mut p = cosmoflow::CosmoflowParams::scaled(scale);
    p.preload_to_shm = true;
    p.faults = faults;
    cosmoflow::run_with(p, scale, seed)
}

/// HACC at `scale` under `faults`.
pub(crate) fn run_hacc(
    scale: f64,
    seed: u64,
    faults: FaultPlan,
) -> exemplar_workloads::WorkloadRun {
    let mut p = hacc::HaccParams::scaled(scale);
    p.faults = faults;
    hacc::run_with(p, scale, seed)
}

/// The experiment-2 pool configuration (client cache disabled so the
/// measurement sees server bandwidth, not memory speed).
pub(crate) fn nsd_config() -> GpfsConfig {
    let mut cfg = GpfsConfig::tiny();
    cfg.client_cache_bytes = 0;
    cfg
}

/// Experiment-2 measurement: aggregate bandwidth of a 64 MiB streaming
/// write through the tiny pool under `plan`, bytes/second.
pub(crate) fn nsd_bw(seed: u64, plan: FaultPlan) -> f64 {
    let bytes = 64 * MIB;
    let mut fs = GpfsSim::new(nsd_config(), 4, 1 * GIB, Dur::from_micros(2), seed);
    fs.set_fault_plan(plan);
    let (k, t) = fs
        .open(NodeId(0), "/bench", true, false, SimTime::ZERO)
        .unwrap();
    let (_, end) = fs.write_pattern(NodeId(0), k, 0, bytes, 1, t).unwrap();
    bytes as f64 / end.since(t).as_secs_f64()
}

/// One workload measured healthy vs under a fault plan.
#[derive(Debug, Clone)]
pub struct FaultImpact {
    /// Workload display name.
    pub workload: &'static str,
    /// Mean per-rank I/O time without faults, seconds.
    pub healthy_io: f64,
    /// Mean per-rank I/O time under the fault plan, seconds.
    pub faulted_io: f64,
    /// Transient-fault events absorbed by the retry middleware.
    pub faults: u64,
    /// Retry records emitted by the middleware.
    pub retries: u64,
    /// Wall time the run lost to faults and backoff, seconds.
    pub time_lost: f64,
}

impl FaultImpact {
    /// I/O-time degradation factor (faulted / healthy); 1.0 = unaffected.
    pub fn degradation(&self) -> f64 {
        if self.healthy_io <= 0.0 {
            f64::INFINITY
        } else {
            self.faulted_io / self.healthy_io
        }
    }
}

/// Build a [`FaultImpact`] from already-computed analyses. The sweep
/// driver analyzes each scenario exactly once and shares baselines across
/// experiments, so impacts are assembled from references.
pub fn impact_from(workload: &'static str, healthy: &Analysis, faulted: &Analysis) -> FaultImpact {
    FaultImpact {
        workload,
        healthy_io: healthy.io_time(),
        faulted_io: faulted.io_time(),
        faults: faulted.fault_events,
        retries: faulted.retry_events,
        time_lost: faulted.time_lost_to_faults(),
    }
}

fn impact_of(
    workload: &'static str,
    healthy: &exemplar_workloads::WorkloadRun,
    faulted: &exemplar_workloads::WorkloadRun,
) -> FaultImpact {
    impact_from(
        workload,
        &Analysis::from_run(healthy),
        &Analysis::from_run(faulted),
    )
}

/// Experiment 1: an MDS brownout (`slowdown`× metadata service time for the
/// whole run) applied to CosmoFlow and HACC. Returns `(cosmoflow, hacc)`.
pub fn mds_brownout_impact(scale: f64, seed: u64, slowdown: f64) -> (FaultImpact, FaultImpact) {
    let plan = mds_plan(slowdown);
    let c_ok = run_cosmo(scale, seed, FaultPlan::none());
    let c_bad = run_cosmo(scale, seed, plan.clone());
    let h_ok = run_hacc(scale, seed, FaultPlan::none());
    let h_bad = run_hacc(scale, seed, plan);
    (
        impact_of("Cosmoflow", &c_ok, &c_bad),
        impact_of("HACC (FPP)", &h_ok, &h_bad),
    )
}

/// Experiment 2 result: aggregate PFS bandwidth with and without one NSD
/// server down.
#[derive(Debug, Clone)]
pub struct OutageBench {
    /// Data servers in the pool.
    pub n_servers: u32,
    /// Aggregate write bandwidth with all servers up, bytes/s.
    pub healthy_bw: f64,
    /// Aggregate write bandwidth with one server down, bytes/s.
    pub degraded_bw: f64,
}

impl OutageBench {
    /// Fractional bandwidth lost to the outage (0 = none, 1 = all).
    pub fn degradation(&self) -> f64 {
        if self.healthy_bw <= 0.0 {
            0.0
        } else {
            1.0 - self.degraded_bw / self.healthy_bw
        }
    }

    /// The dead server's nominal share of aggregate capacity.
    pub fn server_share(&self) -> f64 {
        1.0 / self.n_servers as f64
    }
}

/// Experiment 2: stream a large write through a small GPFS pool, healthy vs
/// with one NSD server down for the whole transfer. The client cache is
/// disabled so the measurement sees server bandwidth, not memory speed.
pub fn nsd_outage_bench(seed: u64) -> OutageBench {
    let n_servers = nsd_config().n_data_servers as u32;
    let healthy_bw = nsd_bw(seed, FaultPlan::none());
    let degraded_bw = nsd_bw(
        seed,
        FaultPlan::none().with_nsd_outage(0, SimTime::ZERO, whole_run()),
    );
    OutageBench {
        n_servers,
        healthy_bw,
        degraded_bw,
    }
}

/// Experiment 3 result: the same PFS fault plan hitting the baseline and
/// the preload-to-shm variant of CosmoFlow.
#[derive(Debug, Clone)]
pub struct ShieldResult {
    /// Baseline (reads from GPFS every epoch) under the fault plan.
    pub baseline: FaultImpact,
    /// Preload-to-shm variant under the same plan.
    pub preloaded: FaultImpact,
}

impl ShieldResult {
    /// How much of the baseline's degradation the preload avoids
    /// (1.0 = fully shielded, 0.0 = no protection).
    pub fn shielding(&self) -> f64 {
        let b = self.baseline.degradation() - 1.0;
        let p = self.preloaded.degradation() - 1.0;
        if b <= 0.0 {
            0.0
        } else {
            (1.0 - p / b).max(0.0)
        }
    }
}

/// Experiment 3: a mid-run PFS fault (NSD brownout plus seeded transient
/// errors, opening a quarter of the way into the healthy baseline run)
/// against CosmoFlow baseline and preload-to-shm. By the time the fault
/// strikes, the preload variant has already staged the dataset into shm,
/// so its training reads never touch the degraded PFS; the baseline is
/// still streaming samples off GPFS and takes the full hit.
pub fn shm_shield_impact(scale: f64, seed: u64) -> ShieldResult {
    let b_ok = run_cosmo(scale, seed, FaultPlan::none());
    let p_ok = run_cosmo_preload(scale, seed, FaultPlan::none());

    // Data-path faults only, opening a quarter of the way into the healthy
    // baseline makespan (see `shield_plan`).
    let plan = shield_plan(SimTime::from_nanos(b_ok.runtime().as_nanos() / 4));
    let b_bad = run_cosmo(scale, seed, plan.clone());
    let p_bad = run_cosmo_preload(scale, seed, plan);

    ShieldResult {
        baseline: impact_of("Cosmoflow (GPFS)", &b_ok, &b_bad),
        preloaded: impact_of("Cosmoflow (preload)", &p_ok, &p_bad),
    }
}

/// Render the full sweep as the repro harness prints it.
pub fn render_fault_sweep(
    brownout: &(FaultImpact, FaultImpact),
    outage: &OutageBench,
    shield: &ShieldResult,
) -> String {
    let mut out = String::from("== Fault sweep: MDS brownout sensitivity\n");
    out.push_str("workload            | healthy I/O (s) | faulted I/O (s) | degradation\n");
    out.push_str("--------------------+-----------------+-----------------+------------\n");
    for i in [&brownout.0, &brownout.1] {
        out.push_str(&format!(
            "{:<19} | {:>15.3} | {:>15.3} | {:>10.2}x\n",
            i.workload,
            i.healthy_io,
            i.faulted_io,
            i.degradation()
        ));
    }
    out.push_str(&format!(
        "metadata-bound vs data-bound sensitivity ratio: {:.2}x\n\n",
        brownout.0.degradation() / brownout.1.degradation()
    ));

    out.push_str(&format!(
        "== Fault sweep: single NSD outage ({} data servers)\n",
        outage.n_servers
    ));
    out.push_str(&format!(
        "aggregate write bandwidth: {:.1} -> {:.1} MiB/s ({:.1}% lost; dead server's share {:.1}%)\n\n",
        outage.healthy_bw / MIB as f64,
        outage.degraded_bw / MIB as f64,
        100.0 * outage.degradation(),
        100.0 * outage.server_share()
    ));

    out.push_str("== Fault sweep: preload-to-shm shielding under PFS faults\n");
    out.push_str("variant             | degradation | faults absorbed | retries | time lost (s)\n");
    out.push_str("--------------------+-------------+-----------------+---------+--------------\n");
    for i in [&shield.baseline, &shield.preloaded] {
        out.push_str(&format!(
            "{:<19} | {:>10.2}x | {:>15} | {:>7} | {:>13.3}\n",
            i.workload,
            i.degradation(),
            i.faults,
            i.retries,
            i.time_lost
        ));
    }
    out.push_str(&format!(
        "preload shields {:.0}% of the fault-induced slowdown\n",
        100.0 * shield.shielding()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mds_brownout_hits_metadata_bound_harder() {
        let (cosmo, hacc) = mds_brownout_impact(0.02, 7, 20.0);
        assert!(
            cosmo.degradation() > 1.1,
            "brownout must slow CosmoFlow: {:.2}x",
            cosmo.degradation()
        );
        assert!(
            cosmo.degradation() >= 2.0 * hacc.degradation(),
            "metadata-bound CosmoFlow ({:.2}x) must degrade >= 2x more than data-bound HACC ({:.2}x)",
            cosmo.degradation(),
            hacc.degradation()
        );
    }

    #[test]
    fn nsd_outage_costs_roughly_the_server_share_plus_contention() {
        let b = nsd_outage_bench(7);
        // One of four servers down: at least its share must be lost, and
        // the rerouted stripes serializing behind survivors cannot cost
        // more than ~3x the share.
        assert!(
            b.degradation() >= b.server_share() * 0.5,
            "outage lost only {:.1}% with share {:.1}%",
            100.0 * b.degradation(),
            100.0 * b.server_share()
        );
        assert!(
            b.degradation() <= (b.server_share() * 3.0).min(0.95),
            "outage lost {:.1}%, far above share {:.1}% plus contention",
            100.0 * b.degradation(),
            100.0 * b.server_share()
        );
    }

    #[test]
    fn preload_to_shm_shields_from_pfs_faults() {
        let s = shm_shield_impact(0.02, 7);
        assert!(
            s.baseline.degradation() > 1.05,
            "fault plan must slow the GPFS baseline: {:.2}x",
            s.baseline.degradation()
        );
        assert!(
            s.preloaded.degradation() < s.baseline.degradation(),
            "preload ({:.2}x) must degrade less than baseline ({:.2}x)",
            s.preloaded.degradation(),
            s.baseline.degradation()
        );
        assert!(
            s.baseline.faults > 0,
            "the 2% error rate must trigger retries"
        );
    }

    #[test]
    fn sweep_renders_every_section() {
        let imp = |w| FaultImpact {
            workload: w,
            healthy_io: 1.0,
            faulted_io: 2.0,
            faults: 3,
            retries: 3,
            time_lost: 0.5,
        };
        let r = render_fault_sweep(
            &(imp("Cosmoflow"), imp("HACC (FPP)")),
            &OutageBench {
                n_servers: 4,
                healthy_bw: 4e8,
                degraded_bw: 3e8,
            },
            &ShieldResult {
                baseline: imp("base"),
                preloaded: imp("pre"),
            },
        );
        assert!(r.contains("MDS brownout"));
        assert!(r.contains("NSD outage"));
        assert!(r.contains("shielding"));
        assert!(r.contains("2.00x"));
    }
}
