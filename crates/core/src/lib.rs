//! # vani-core
//!
//! The paper's primary contribution: a systematic characterization of HPC
//! workload I/O behavior into **entities** and **attributes**, automatic
//! extraction of those attributes from multi-level traces, and a mapping
//! from attributes to storage-stack reconfigurations.
//!
//! * [`entities`] — the entity/attribute model of §IV-B: Job entities
//!   (job-configuration, workflow, application, I/O-phase), Software
//!   entities (high-level I/O, middleware, node-local and shared storage),
//!   and Data entities (dataset, file),
//! * [`analyzer`] — the Vani Analyzer: turns a captured columnar trace into
//!   attributes (shared-vs-FPP classification, data/metadata splits,
//!   request-size and bandwidth histograms, timelines, phase detection,
//!   access-pattern detection, process/app data dependencies, value
//!   distribution fitting),
//! * [`tables`] — regenerates the paper's Tables I–XI from a set of runs,
//! * [`figures`] — regenerates the per-workload Figures 1–6 panels
//!   (request-size/bandwidth histograms, dependency summaries, timelines),
//! * [`yaml`] — the Analyzer's YAML emission of entities and attributes,
//! * [`optimizer`] — the §IV-D attribute → optimization mapping rules,
//! * [`reconfig`] — the two §V use cases: CosmoFlow preload-to-shm (Fig. 7)
//!   and Montage intermediates-to-node-local (Fig. 8), as experiment
//!   drivers that run baseline and optimized variants across node counts,
//! * [`faultsweep`] — the fault-injection sweep: MDS-brownout sensitivity
//!   (CosmoFlow vs HACC), single-NSD-outage bandwidth cost, and
//!   preload-to-shm fault shielding,
//! * [`crashsweep`] — the crash-recovery sweep: CosmoFlow over a grid of
//!   checkpoint counts × whole-job crashes, rendering the
//!   checkpoint-interval vs time-to-solution tradeoff figure,
//! * [`tenancy`] — the multi-tenant datacenter mode: seeded open/closed
//!   job arrivals, a deterministic FCFS scheduler over a shared cluster,
//!   a mean-field shared-PFS contention model, and the fleet sweep that
//!   renders IO500-style distribution/correlation/noisy-neighbor
//!   statistics over thousands of jobs (`repro -- fleet-sweep`),
//! * [`sweep`] — the scenario-parallel simulation driver: fans independent
//!   simulations (paper six, fault scenarios, reconfiguration search
//!   points) across `rt::par` workers with split RNG streams and stable
//!   scenario ids, merging results in registration order so every table,
//!   YAML document, and figure is byte-identical to a sequential run at
//!   any worker count.

pub mod analyzer;
pub mod crashsweep;
pub mod entities;
pub mod faultsweep;
pub mod figures;
pub mod optimizer;
pub mod reconfig;
pub mod streaming;
pub mod sweep;
pub mod tables;
pub mod tenancy;
pub mod yaml;

pub use analyzer::Analysis;
pub use entities::{AttrValue, Entity, EntityType};
pub use optimizer::{recommend, Recommendation};
