//! The two §V use cases as experiment drivers.
//!
//! Each driver runs the baseline and the recommendation-applied variant of
//! a workload across a node-count sweep and reports per-rank I/O time —
//! the quantity Figures 7 and 8 plot ("improve I/O performance up to
//! 4.6×/8×"). The reconfiguration is exactly what the optimizer's rule
//! recommends: repoint the data path at the node-local tier.

use crate::analyzer::Analysis;
use crate::sweep::{Driver, ScenarioSet};
use exemplar_workloads::{cosmoflow, montage};

/// One point of a Figure 7/8 sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Node count.
    pub nodes: u32,
    /// Baseline mean per-rank I/O time, seconds.
    pub baseline_io: f64,
    /// Optimized mean per-rank I/O time, seconds.
    pub optimized_io: f64,
    /// Baseline job runtime, seconds.
    pub baseline_runtime: f64,
    /// Optimized job runtime, seconds.
    pub optimized_runtime: f64,
}

impl SweepPoint {
    /// I/O-time speedup from the reconfiguration.
    pub fn speedup(&self) -> f64 {
        if self.optimized_io <= 0.0 {
            f64::INFINITY
        } else {
            self.baseline_io / self.optimized_io
        }
    }
}

fn io_time_of(run: &exemplar_workloads::WorkloadRun) -> (f64, f64) {
    let a = Analysis::from_run(run);
    (a.io_time(), a.job_time.as_secs_f64())
}

/// Figure 7: CosmoFlow baseline (GPFS, cross-node MPI-IO groups) vs
/// optimized (preload to shm, node-local reads), strong-scaled over
/// `node_counts`. Sweep points are independent simulations and run in
/// parallel.
pub fn figure7(scale: f64, node_counts: &[u32], seed: u64) -> Vec<SweepPoint> {
    figure7_with(scale, node_counts, seed, Driver::Parallel)
}

/// [`figure7`] with an explicit scenario driver: one scenario per node
/// count, fanned out by `vani_core::sweep`.
pub fn figure7_with(scale: f64, node_counts: &[u32], seed: u64, driver: Driver) -> Vec<SweepPoint> {
    let mut set = ScenarioSet::new(seed);
    for &nodes in node_counts {
        set.add(format!("fig7/nodes-{nodes}"), move |_| {
            let mut p = cosmoflow::CosmoflowParams::scaled(scale);
            p.nodes = nodes;
            let base = cosmoflow::run_with(p.clone(), scale, seed);
            let mut po = p.clone();
            po.preload_to_shm = true;
            let opt = cosmoflow::run_with(po, scale, seed);
            let (bio, brt) = io_time_of(&base);
            let (oio, ort) = io_time_of(&opt);
            SweepPoint {
                nodes,
                baseline_io: bio,
                optimized_io: oio,
                baseline_runtime: brt,
                optimized_runtime: ort,
            }
        });
    }
    set.run(driver)
}

/// Figure 8: Montage-MPI baseline (intermediates on GPFS) vs optimized
/// (intermediates in `/dev/shm`), strong-scaled over `node_counts`:
/// total work fixed at the `scale`-sized workload, divided per node.
/// Sweep points are independent simulations and run in parallel.
pub fn figure8(scale: f64, node_counts: &[u32], seed: u64) -> Vec<SweepPoint> {
    figure8_with(scale, node_counts, seed, Driver::Parallel)
}

/// [`figure8`] with an explicit scenario driver.
pub fn figure8_with(scale: f64, node_counts: &[u32], seed: u64, driver: Driver) -> Vec<SweepPoint> {
    let base_p = montage::MontageParams::scaled(scale);
    let mut set = ScenarioSet::new(seed);
    for &nodes in node_counts {
        let base_p = base_p.clone();
        set.add(format!("fig8/nodes-{nodes}"), move |_| {
            let f = base_p.nodes as f64 / nodes as f64;
            let mut p = base_p.clone();
            p.nodes = nodes;
            p.inputs_per_node = ((base_p.inputs_per_node as f64 * f).round() as u32).max(1);
            p.proj_bytes_per_node = (((base_p.proj_bytes_per_node as f64) * f) as u64).max(1 << 20);
            p.madd_read_per_rank = (((base_p.madd_read_per_rank as f64) * f) as u64).max(64 << 10);
            p.madd_write_per_rank =
                (((base_p.madd_write_per_rank as f64) * f) as u64).max(128 << 10);
            p.mviewer_read_per_node =
                (((base_p.mviewer_read_per_node as f64) * f) as u64).max(1 << 20);
            let base = montage::run_with(p.clone(), scale, seed);
            let mut po = p.clone();
            po.workdir = "/dev/shm/montage".to_string();
            let opt = montage::run_with(po, scale, seed);
            let (bio, brt) = io_time_of(&base);
            let (oio, ort) = io_time_of(&opt);
            SweepPoint {
                nodes,
                baseline_io: bio,
                optimized_io: oio,
                baseline_runtime: brt,
                optimized_runtime: ort,
            }
        });
    }
    set.run(driver)
}

/// Render a sweep as the repro harness prints it.
pub fn render_sweep(title: &str, points: &[SweepPoint]) -> String {
    let mut out = format!("== {title}\n");
    out.push_str("nodes | baseline I/O (s) | optimized I/O (s) | speedup\n");
    out.push_str("------+------------------+-------------------+--------\n");
    for p in points {
        out.push_str(&format!(
            "{:>5} | {:>16.3} | {:>17.3} | {:>6.2}x\n",
            p.nodes,
            p.baseline_io,
            p.optimized_io,
            p.speedup()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure7_optimized_wins_and_trend_holds() {
        let pts = figure7(0.02, &[4, 8], 7);
        assert_eq!(pts.len(), 2);
        for p in &pts {
            assert!(
                p.speedup() > 1.2,
                "preload must win at {} nodes: {:.2}x",
                p.nodes,
                p.speedup()
            );
        }
    }

    #[test]
    fn figure8_optimized_wins_big() {
        let pts = figure8(0.05, &[4, 8], 7);
        for p in &pts {
            assert!(
                p.speedup() > 3.0,
                "node-local intermediates must win at {} nodes: {:.2}x",
                p.nodes,
                p.speedup()
            );
        }
    }

    #[test]
    fn sweep_renders_as_table() {
        let pts = vec![SweepPoint {
            nodes: 32,
            baseline_io: 2.0,
            optimized_io: 0.5,
            baseline_runtime: 10.0,
            optimized_runtime: 9.0,
        }];
        let r = render_sweep("Figure 7", &pts);
        assert!(r.contains("4.00x"));
        assert!(r.contains("32"));
    }
}
