//! Regenerates the per-workload figure panels (Figures 1–6):
//! (a) request-size and per-request-bandwidth histograms,
//! (b) process/app data-dependency summaries,
//! (c) read/write timelines.
//!
//! Output is plain text (ASCII bars) so the `repro` harness can print the
//! same series the paper plots.

use crate::analyzer::Analysis;
use sim_core::units::{fmt_bw, fmt_bytes, fmt_count};

/// Render panel (a): request-size histogram + bandwidth histogram.
pub fn panel_a(a: &Analysis) -> String {
    let mut out = String::new();
    out.push_str(&format!("(a) {} — request sizes:\n", a.kind.name()));
    out.push_str(&hist_text(&a.req_sizes, |v| fmt_bytes(v)));
    out.push_str("    per-request bandwidth:\n");
    out.push_str(&hist_text(&a.req_bandwidth, |v| fmt_bw(v as f64)));
    out
}

fn hist_text(h: &sim_core::Histogram, label: impl Fn(u64) -> String) -> String {
    let mut out = String::new();
    let max = h.iter().map(|(_, c)| c).max().unwrap_or(1).max(1);
    for (bucket, count) in h.iter() {
        let bar = "#".repeat(((count as f64 / max as f64) * 40.0).ceil() as usize);
        out.push_str(&format!(
            "    {:>12} | {:40} {}\n",
            label(bucket),
            bar,
            fmt_count(count)
        ));
    }
    out
}

/// Render panel (b): dependency summary — top files with reader/writer
/// rank counts, plus app-level producer → consumer edges for workflows.
pub fn panel_b(a: &Analysis) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "(b) {} — process/data dependency:\n",
        a.kind.name()
    ));
    for f in a.files.iter().take(6) {
        out.push_str(&format!(
            "    {:50} size={:>10} readers={:>5} writers={:>4} {}\n",
            truncate(&f.path, 50),
            fmt_bytes(f.size),
            f.readers.len(),
            f.writers.len(),
            if f.is_shared() { "[shared]" } else { "[fpp]" },
        ));
    }
    if a.files.len() > 6 {
        out.push_str(&format!("    ... and {} more files\n", a.files.len() - 6));
    }
    if !a.app_deps.is_empty() {
        out.push_str("    app dependencies:\n");
        for (from, to) in &a.app_deps {
            out.push_str(&format!("      {from} -> {to}\n"));
        }
    }
    out
}

/// Render panel (c): read/write timeline as bytes-per-bin bars.
pub fn panel_c(a: &Analysis) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "(c) {} — I/O timeline ({} bins over {:.1}s):\n",
        a.kind.name(),
        a.read_timeline
            .bins()
            .len()
            .max(a.write_timeline.bins().len()),
        a.job_time.as_secs_f64()
    ));
    let peak = a.read_timeline.peak().max(a.write_timeline.peak()).max(1.0);
    let bins = a
        .read_timeline
        .bins()
        .len()
        .max(a.write_timeline.bins().len());
    // Downsample to at most 32 printed rows.
    let step = (bins / 32).max(1);
    for b in (0..bins).step_by(step) {
        let r: f64 = a.read_timeline.bins().get(b).copied().unwrap_or(0.0);
        let w: f64 = a.write_timeline.bins().get(b).copied().unwrap_or(0.0);
        if r == 0.0 && w == 0.0 {
            continue;
        }
        let rbar = "R".repeat(((r / peak) * 30.0).ceil() as usize);
        let wbar = "W".repeat(((w / peak) * 30.0).ceil() as usize);
        let t = b as f64 * a.read_timeline.bin_width().as_secs_f64();
        out.push_str(&format!("    t={t:>8.2}s |{rbar}{wbar}\n"));
    }
    out
}

/// All three panels for one workload's figure.
pub fn figure(a: &Analysis) -> String {
    format!("{}{}{}", panel_a(a), panel_b(a), panel_c(a))
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("…{}", &s[s.len() - (n - 1)..])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::Analysis;
    use exemplar_workloads::{hacc, montage};

    #[test]
    fn panels_render_nonempty() {
        let a = Analysis::from_run(&hacc::run(0.02, 1));
        let fig = figure(&a);
        assert!(fig.contains("request sizes"));
        assert!(fig.contains("process/data dependency"));
        assert!(fig.contains("I/O timeline"));
        assert!(fig.lines().count() > 10);
    }

    #[test]
    fn workflow_figures_show_app_edges() {
        let a = Analysis::from_run(&montage::run(0.02, 2));
        let b = panel_b(&a);
        assert!(b.contains("app dependencies"), "{b}");
        assert!(b.contains("->"));
    }

    #[test]
    fn timeline_panel_downsamples() {
        let a = Analysis::from_run(&hacc::run(0.02, 1));
        let c = panel_c(&a);
        assert!(c.lines().count() <= 40);
    }
}
