//! Regenerates the paper's Tables I–XI from analyzed runs.
//!
//! Each builder takes the six exemplar analyses (column order fixed by
//! [`exemplar_workloads::WorkloadKind::paper_six`]) and emits a [`Table`]
//! whose rows mirror the paper's attribute rows. The pretty-printer renders
//! aligned plain text for the `repro` harness.

use crate::analyzer::Analysis;
use crate::entities::{AttrValue, Entity, EntityType};
use exemplar_workloads::WorkloadKind;
use sim_core::units::{fmt_bytes, fmt_count};

/// A rendered table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table title ("Table I: High-Level I/O behavior of applications").
    pub title: String,
    /// Header row (first cell = attribute column).
    pub header: Vec<String>,
    /// Attribute rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    fn new(title: &str, analyses: &[&Analysis]) -> Table {
        let mut header = vec!["Attribute".to_string()];
        header.extend(analyses.iter().map(|a| a.kind.name().to_string()));
        Table {
            title: title.to_string(),
            header,
            rows: Vec::new(),
        }
    }

    fn row(&mut self, name: &str, values: Vec<String>) {
        let mut r = vec![name.to_string()];
        r.extend(values);
        self.rows.push(r);
    }

    /// Render as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {}\n", self.title));
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join(" | ")
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 3 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

fn col<F: Fn(&Analysis) -> String>(analyses: &[&Analysis], f: F) -> Vec<String> {
    analyses.iter().map(|a| f(a)).collect()
}

/// Table I: high-level I/O behavior.
pub fn table1(analyses: &[&Analysis]) -> Table {
    let mut t = Table::new("Table I: High-Level I/O behavior of applications", analyses);
    t.row(
        "job time (sec)",
        col(analyses, |a| format!("{:.0}", a.job_time.as_secs_f64())),
    );
    t.row(
        "% of I/O time",
        col(analyses, |a| format!("{:.0}%", a.io_time_frac * 100.0)),
    );
    t.row("Write I/O", col(analyses, |a| fmt_bytes(a.write_bytes)));
    t.row("Read I/O", col(analyses, |a| fmt_bytes(a.read_bytes)));
    t.row(
        "CPU Cores/node",
        col(analyses, |a| a.ranks_per_node.to_string()),
    );
    t.row(
        "# files used",
        col(analyses, |a| fmt_count(a.n_files() as u64)),
    );
    t.row(
        "Shared File access",
        col(analyses, |a| fmt_count(a.shared_files() as u64)),
    );
    t.row(
        "File per process (FPP) access",
        col(analyses, |a| fmt_count(a.fpp_files() as u64)),
    );
    t.row(
        "Access Pattern",
        col(analyses, |a| a.access_pattern.clone()),
    );
    t.row("I/O Interface", col(analyses, |a| a.interface.clone()));
    t
}

/// Table II: job-configuration entity.
pub fn table2(analyses: &[&Analysis]) -> Table {
    let mut t = Table::new(
        "Table II: Attributes for Job Configuration Entity Type",
        analyses,
    );
    t.row("# nodes", col(analyses, |a| a.nodes.to_string()));
    t.row("# cpu cores per node", col(analyses, |_| "40".to_string()));
    t.row("# gpu/node", col(analyses, |_| "4".to_string()));
    t.row(
        "Node-local BB dir",
        col(analyses, |_| "/dev/shm".to_string()),
    );
    t.row("Shared BB dir", col(analyses, |_| "NA".to_string()));
    t.row("PFS dir", col(analyses, |_| "/p/gpfs1".to_string()));
    t.row(
        "Job time",
        col(analyses, |a| format!("{:.0}s", a.job_time.as_secs_f64())),
    );
    t
}

/// Table III: workflow entity.
pub fn table3(analyses: &[&Analysis]) -> Table {
    let mut t = Table::new("Table III: Attributes for Workflow Entity Type", analyses);
    t.row(
        "# CPU cores used/node",
        col(analyses, |a| a.ranks_per_node.to_string()),
    );
    t.row(
        "# GPUs used/node",
        col(analyses, |a| match a.kind {
            WorkloadKind::Cosmoflow | WorkloadKind::Jag => "4".to_string(),
            _ => "0".to_string(),
        }),
    );
    t.row("# apps", col(analyses, |a| a.apps.len().to_string()));
    t.row(
        "App data dependency",
        col(analyses, |a| {
            if a.app_deps.is_empty() {
                "NA".to_string()
            } else {
                format!("{} edges", a.app_deps.len())
            }
        }),
    );
    t.row(
        "FPP/shared file access",
        col(analyses, |a| {
            format!("{}/{}", a.fpp_files(), a.shared_files())
        }),
    );
    t.row("I/O amount", col(analyses, |a| fmt_bytes(a.io_bytes())));
    t.row(
        "I/O ops dist (data, meta)",
        col(analyses, |a| {
            format!(
                "{:.0}%, {:.0}%",
                a.data_frac() * 100.0,
                (1.0 - a.data_frac()) * 100.0
            )
        }),
    );
    t.row(
        "Runtime (sec)",
        col(analyses, |a| format!("{:.0}", a.job_time.as_secs_f64())),
    );
    t
}

/// Table IV: application entity.
pub fn table4(analyses: &[&Analysis]) -> Table {
    let mut t = Table::new("Table IV: Attributes for Application Entity Type", analyses);
    t.row(
        "# processes",
        col(analyses, |a| fmt_count(a.n_ranks as u64)),
    );
    t.row(
        "Process data dependency",
        col(analyses, |a| {
            let shared = a.shared_files();
            if shared > 0 {
                format!("{shared} shared files")
            } else {
                "FPP".to_string()
            }
        }),
    );
    t.row(
        "FPP/shared file access",
        col(analyses, |a| {
            format!("{}/{}", a.fpp_files(), a.shared_files())
        }),
    );
    t.row("I/O amount", col(analyses, |a| fmt_bytes(a.io_bytes())));
    t.row(
        "I/O ops dist (data, meta)",
        col(analyses, |a| {
            format!(
                "{:.0}%, {:.0}%",
                a.data_frac() * 100.0,
                (1.0 - a.data_frac()) * 100.0
            )
        }),
    );
    t.row("Interface", col(analyses, |a| a.interface.clone()));
    t.row(
        "Runtime",
        col(analyses, |a| format!("{:.0}sec", a.job_time.as_secs_f64())),
    );
    t
}

/// Table V: first I/O phase entity.
pub fn table5(analyses: &[&Analysis]) -> Table {
    let mut t = Table::new(
        "Table V: Attributes for I/O Phase Entity Type (first phase)",
        analyses,
    );
    t.row(
        "I/O amount",
        col(analyses, |a| {
            a.phases
                .first()
                .map(|p| fmt_bytes(p.bytes))
                .unwrap_or_else(|| "NA".into())
        }),
    );
    t.row(
        "I/O ops dist (data, meta)",
        col(analyses, |a| {
            a.phases
                .first()
                .map(|p| {
                    let total = (p.data_ops + p.meta_ops).max(1);
                    format!(
                        "{:.0}%, {:.0}%",
                        p.data_ops as f64 / total as f64 * 100.0,
                        p.meta_ops as f64 / total as f64 * 100.0
                    )
                })
                .unwrap_or_else(|| "NA".into())
        }),
    );
    t.row(
        "Frequency",
        col(analyses, |a| {
            a.phases
                .first()
                .map(|p| {
                    format!(
                        "{} ops ({})",
                        fmt_count(p.data_ops),
                        fmt_bytes(p.dominant_xfer)
                    )
                })
                .unwrap_or_else(|| "NA".into())
        }),
    );
    t.row(
        "Runtime",
        col(analyses, |a| {
            a.phases
                .first()
                .map(|p| format!("{:.2}sec", p.runtime().as_secs_f64()))
                .unwrap_or_else(|| "NA".into())
        }),
    );
    t
}

/// Table VI: high-level I/O entity.
pub fn table6(analyses: &[&Analysis]) -> Table {
    let mut t = Table::new(
        "Table VI: Attributes for High-Level I/O Entity Type",
        analyses,
    );
    t.row(
        "Data repr",
        col(analyses, |a| match a.kind {
            WorkloadKind::Cm1 | WorkloadKind::Cosmoflow | WorkloadKind::Jag => "3D".to_string(),
            WorkloadKind::Hacc => "1D".to_string(),
            _ => "2D".to_string(),
        }),
    );
    t.row(
        "Granularity (data)",
        col(analyses, |a| {
            let (lo, hi) = a.granularity();
            if lo == hi {
                fmt_bytes(lo)
            } else {
                format!("{}-{}", fmt_bytes(lo), fmt_bytes(hi))
            }
        }),
    );
    t.row(
        "Access pattern",
        col(analyses, |a| a.access_pattern.clone()),
    );
    t.row(
        "Data dist",
        col(analyses, |a| a.data_dist.label().to_string()),
    );
    t
}

/// Table VII: middleware entity.
pub fn table7(analyses: &[&Analysis]) -> Table {
    let mut t = Table::new(
        "Table VII: Attributes for Middleware I/O Entity Type (no middleware active)",
        analyses,
    );
    t.row(
        "# extra cores for I/O/node",
        col(analyses, |a| {
            (40u32.saturating_sub(a.ranks_per_node)).to_string()
        }),
    );
    t.row(
        "Granularity (data)",
        col(analyses, |a| {
            let (lo, hi) = a.granularity();
            if lo == hi {
                fmt_bytes(lo)
            } else {
                format!("{}-{}", fmt_bytes(lo), fmt_bytes(hi))
            }
        }),
    );
    t.row("Memory/node", col(analyses, |_| "256GiB".to_string()));
    t.row(
        "Access pattern",
        col(analyses, |a| a.access_pattern.clone()),
    );
    t
}

/// Table VIII: node-local storage entity (system attributes from JobUtility).
pub fn table8(analyses: &[&Analysis]) -> Table {
    let mut t = Table::new(
        "Table VIII: Attributes for Node-Local Storage Entity Type",
        analyses,
    );
    t.row(
        "# parallel ops (controller)",
        col(analyses, |_| "64".to_string()),
    );
    t.row("Capacity/node", col(analyses, |_| "128GiB".to_string()));
    t.row("Max I/O bw/node", col(analyses, |_| "32GiB/s".to_string()));
    t.row("Dir", col(analyses, |_| "/dev/shm".to_string()));
    t
}

/// Table IX: shared-storage entity. `measured_peak` comes from the IOR
/// calibration run.
pub fn table9(analyses: &[&Analysis], measured_peak: f64) -> Table {
    let mut t = Table::new(
        "Table IX: Attributes for Shared-Storage Entity Type",
        analyses,
    );
    t.row(
        "# parallel servers",
        col(analyses, |_| "96 NSD + 8 MDS".to_string()),
    );
    t.row("Capacity", col(analyses, |_| "24PiB".to_string()));
    t.row(
        "Max I/O BW",
        col(analyses, |_| {
            format!(
                "{} using 32-node IOR",
                sim_core::units::fmt_bw(measured_peak)
            )
        }),
    );
    t.row("Dir", col(analyses, |_| "/p/gpfs1".to_string()));
    t
}

/// Table X: dataset entity.
pub fn table10(analyses: &[&Analysis]) -> Table {
    let mut t = Table::new("Table X: Attributes for Dataset Entity Type", analyses);
    t.row(
        "Format",
        col(analyses, |a| match a.kind {
            WorkloadKind::Cosmoflow => "HDF5".to_string(),
            _ => "bin".to_string(),
        }),
    );
    t.row("Size", col(analyses, |a| fmt_bytes(a.dataset_bytes())));
    t.row(
        "# of files",
        col(analyses, |a| fmt_count(a.n_files() as u64)),
    );
    t.row("I/O", col(analyses, |a| fmt_bytes(a.io_bytes())));
    t.row(
        "Time (sec)",
        col(analyses, |a| format!("{:.1}", a.io_time())),
    );
    t.row(
        "I/O ops dist (data, meta)",
        col(analyses, |a| {
            format!(
                "{:.0}%, {:.0}%",
                a.data_frac() * 100.0,
                (1.0 - a.data_frac()) * 100.0
            )
        }),
    );
    t
}

/// Table XI: file entity (the workload's most-read data file).
pub fn table11(analyses: &[&Analysis]) -> Table {
    let mut t = Table::new(
        "Table XI: Attributes for File Entity Type (top data file)",
        analyses,
    );
    t.row(
        "Size",
        col(analyses, |a| {
            a.files
                .first()
                .map(|f| fmt_bytes(f.size))
                .unwrap_or_else(|| "NA".into())
        }),
    );
    t.row(
        "I/O",
        col(analyses, |a| {
            a.files
                .first()
                .map(|f| fmt_bytes(f.read_bytes + f.write_bytes))
                .unwrap_or_else(|| "NA".into())
        }),
    );
    t.row(
        "Time (sec)",
        col(analyses, |a| {
            a.files
                .first()
                .map(|f| format!("{:.3}", f.time.as_secs_f64()))
                .unwrap_or_else(|| "NA".into())
        }),
    );
    t.row(
        "I/O ops dist (data, meta)",
        col(analyses, |a| {
            a.files
                .first()
                .map(|f| {
                    let total = (f.data_ops + f.meta_ops).max(1);
                    format!(
                        "{:.0}%, {:.0}%",
                        f.data_ops as f64 / total as f64 * 100.0,
                        f.meta_ops as f64 / total as f64 * 100.0
                    )
                })
                .unwrap_or_else(|| "NA".into())
        }),
    );
    t.row(
        "# readers/#writers",
        col(analyses, |a| {
            a.files
                .first()
                .map(|f| format!("{}/{}", f.readers.len(), f.writers.len()))
                .unwrap_or_else(|| "NA".into())
        }),
    );
    t
}

/// Build the full entity set for one analysis (what the YAML emitter dumps).
pub fn entities_for(a: &Analysis) -> Vec<Entity> {
    entities_with_completeness(a, None)
}

/// Entity set with an optional trace-integrity annotation: analyses of
/// salvaged traces carry the loaded fraction and record counts so a reader
/// of the YAML knows the attributes were computed from a damaged capture.
/// Passing `None` is exactly [`entities_for`] — byte-identical output.
pub fn entities_with_completeness(
    a: &Analysis,
    completeness: Option<&recorder_sim::persist::TraceCompleteness>,
) -> Vec<Entity> {
    let mut out = Vec::new();
    out.push(
        Entity::new(EntityType::JobConfiguration, a.kind.name())
            .with("#nodes", AttrValue::Count(a.nodes as u64))
            .with("#cpu_cores_per_node", AttrValue::Count(40))
            .with("#gpu_per_node", AttrValue::Count(4))
            .with("node_local_bb_dir", AttrValue::Str("/dev/shm".into()))
            .with("shared_bb_dir", AttrValue::Na)
            .with("pfs_dir", AttrValue::Str("/p/gpfs1".into()))
            .with("job_time", AttrValue::Seconds(a.job_time.as_secs_f64())),
    );
    out.push(
        Entity::new(EntityType::Workflow, a.kind.name())
            .with("#apps", AttrValue::Count(a.apps.len() as u64))
            .with("io_amount", AttrValue::Bytes(a.io_bytes()))
            .with(
                "ops_dist_data_meta",
                AttrValue::Split(a.data_frac(), 1.0 - a.data_frac()),
            )
            .with("runtime", AttrValue::Seconds(a.job_time.as_secs_f64())),
    );
    let mut app = Entity::new(EntityType::Application, a.kind.name())
        .with("#processes", AttrValue::Count(a.n_ranks as u64))
        .with("fpp_files", AttrValue::Count(a.fpp_files() as u64))
        .with("shared_files", AttrValue::Count(a.shared_files() as u64))
        .with("interface", AttrValue::Str(a.interface.clone()))
        .with("io_time_frac", AttrValue::Fraction(a.io_time_frac));
    // Resilience attributes: only present when the run saw injected faults,
    // so fault-free emissions stay byte-identical to earlier versions.
    if a.fault_events > 0 || a.retry_events > 0 {
        app = app
            .with("error_rate", AttrValue::Fraction(a.error_rate()))
            .with(
                "retry_amplification",
                AttrValue::Fraction(a.retry_amplification()),
            )
            .with(
                "time_lost_to_faults",
                AttrValue::Seconds(a.time_lost_to_faults()),
            );
    }
    // Crash-recovery attributes: only present when the job actually
    // restarted, so crash-free emissions stay byte-identical too.
    if a.restart_events > 0 {
        app = app
            .with("restart_count", AttrValue::Count(a.restart_count()))
            .with(
                "time_lost_to_crashes",
                AttrValue::Seconds(a.time_lost_to_crashes()),
            )
            .with(
                "checkpoint_overhead",
                AttrValue::Seconds(a.checkpoint_overhead()),
            )
            .with("recovery_time", AttrValue::Seconds(a.recovery_seconds()));
    }
    // Trace-integrity annotation for analyses built from salvaged captures.
    if let Some(tc) = completeness {
        app = app
            .with("trace_completeness", AttrValue::Fraction(tc.fraction()))
            .with("trace_records_loaded", AttrValue::Count(tc.loaded_records))
            .with(
                "trace_records_expected",
                AttrValue::Count(tc.expected_records),
            );
    }
    out.push(app);
    // Per-server outage impact: bytes each failed NSD server's stripes
    // pushed onto survivors.
    if a.rerouted_by_server.iter().any(|&b| b > 0) {
        let mut imp = Entity::new(EntityType::Application, "nsd_outage_impact");
        for (server, &bytes) in a.rerouted_by_server.iter().enumerate() {
            if bytes > 0 {
                imp = imp.with(&format!("server{server}_rerouted"), AttrValue::Bytes(bytes));
            }
        }
        out.push(imp);
    }
    if let Some(p) = a.phases.first() {
        out.push(
            Entity::new(EntityType::IoPhase, "phase0")
                .with("io_amount", AttrValue::Bytes(p.bytes))
                .with("runtime", AttrValue::Seconds(p.runtime().as_secs_f64()))
                .with("dominant_xfer", AttrValue::Bytes(p.dominant_xfer)),
        );
    }
    let (lo, hi) = a.granularity();
    out.push(
        Entity::new(EntityType::HighLevelIo, a.kind.name())
            .with("granularity", AttrValue::Range(lo, hi))
            .with("access_pattern", AttrValue::Str(a.access_pattern.clone()))
            .with("data_dist", AttrValue::Str(a.data_dist.label().into())),
    );
    out.push(
        Entity::new(EntityType::Dataset, a.kind.name())
            .with("size", AttrValue::Bytes(a.dataset_bytes()))
            .with("#files", AttrValue::Count(a.n_files() as u64))
            .with("io", AttrValue::Bytes(a.io_bytes())),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use exemplar_workloads::hacc;

    fn analysis() -> Analysis {
        Analysis::from_run(&hacc::run(0.02, 1))
    }

    #[test]
    fn table1_has_all_attribute_rows() {
        let a = analysis();
        let t = table1(&[&a]);
        assert_eq!(t.rows.len(), 10);
        assert_eq!(t.header.len(), 2);
        let rendered = t.render();
        assert!(rendered.contains("I/O Interface"));
        assert!(rendered.contains("POSIX"));
    }

    #[test]
    fn all_eleven_tables_render() {
        let a = analysis();
        let cols = [&a];
        let tables = vec![
            table1(&cols),
            table2(&cols),
            table3(&cols),
            table4(&cols),
            table5(&cols),
            table6(&cols),
            table7(&cols),
            table8(&cols),
            table9(&cols, 64.0 * (1 << 30) as f64),
            table10(&cols),
            table11(&cols),
        ];
        for t in tables {
            let r = t.render();
            assert!(r.starts_with("== Table"));
            assert!(r.lines().count() >= 3, "{r}");
        }
    }

    #[test]
    fn entity_set_covers_all_groups() {
        let a = analysis();
        let ents = entities_for(&a);
        let groups: std::collections::HashSet<&str> =
            ents.iter().map(|e| e.etype.group()).collect();
        assert!(groups.contains("job"));
        assert!(groups.contains("software"));
        assert!(groups.contains("data"));
    }
}
