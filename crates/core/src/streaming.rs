//! Streaming bounded-memory analyzer: fold a chunked trace into the fused
//! accumulators one row group at a time.
//!
//! [`TraceProfile::fused`] needs the whole columnar trace resident (plus an
//! index sort over the interface selection). This module computes the *same
//! profile* — bit-identical, see the determinism contract below — from a
//! [`ChunkedTrace`]: compressed row groups are decoded into one recycled
//! buffer, folded through [`fold_fused_record`] (the fused scan's inner
//! loop, verbatim) with [`vani_rt::par::par_fold_shards_sized`], and
//! dropped. Peak resident trace bytes are bounded by the chunk size, not
//! the trace length.
//!
//! # Why the offline detectors don't stream
//!
//! Three profile components consume a *sorted* view of the trace, which a
//! chunk-at-a-time pass cannot materialize:
//!
//! * **Phases** — [`detect_phases_sorted`] scans the interface selection in
//!   start order. Replaced by [`PhaseBuilder`]: an ordered cluster list
//!   with gap-threshold merging. Records insert in any order; the final
//!   clusters are exactly the sorted scan's phases (a phase cut falls
//!   between sorted records `i-1, i` iff `start_i` exceeds the max end of
//!   all earlier-starting records by more than the threshold — a property
//!   of the *set* of intervals, not the visit order).
//! * **Access pattern** — [`scan_access_pattern`] walks data ops in start
//!   order, comparing each offset with the previous end for the same
//!   `(rank, file)`. [`PatternTracker`] does the same walk in capture
//!   order, carrying a certificate: if every cell's starts arrive
//!   nondecreasing, capture order and stable-sorted order agree cell-wise
//!   and the counts are identical. The simulator's tracer appends each
//!   rank's stream in time order, so the certificate holds on every real
//!   trace; if it ever fails, the tracker falls back to re-decoding the
//!   chunks and replaying a sorted scan (correct, but unbounded memory —
//!   the price of a trace that was shuffled after capture).
//! * **Timelines** — f64 bin accumulation is non-associative, but the
//!   fused path adds contributions in capture (index) order, which is
//!   exactly chunk order × in-chunk order. Streaming adds per chunk and
//!   matches bit-for-bit.
//!
//! # Determinism contract
//!
//! For every trace, worker count, and chunk size,
//! `TraceProfile::streaming(&ChunkedTrace::from_columnar(&c, k), t)` equals
//! `TraceProfile::fused(&c, t)` on all fields (`==`, which for the f64
//! fields means bit-identity). The pinning suite is
//! `tests/streaming_vs_fused.rs`.

use recorder_sim::chunk::{columnar_capacity_bytes, GaugeCharge};
use recorder_sim::record::Layer;
use recorder_sim::spill::{spill_columnar, ChunkSource, SpillError, SpillFaultPlan, SpillSource};
use recorder_sim::{ChunkedTrace, ColumnarTrace, FsckReport, DEFAULT_CHUNK_ROWS};
use sim_core::{Dur, Histogram, SimTime, TimeSeries};
use std::collections::HashMap;
use std::path::Path;
use vani_rt::par;

use crate::analyzer::{
    dominant_bucket, emit_profile, fold_fused_record, interface_from_presence, interface_layers,
    layer_idx, phase_threshold, timeline_bin, Analysis, Dims, FusedShard, PhaseInfo, SelCtx,
    TraceProfile,
};
use exemplar_workloads::harness::WorkloadRun;

/// Morsel size for the intra-chunk parallel fold. Any in-order contiguous
/// partition of a chunk produces identical merged shards (the accumulators
/// are sums, maxima, bitsets, and in-order index concatenation), so this is
/// a pure tuning knob — small enough to spread one chunk across workers.
const STREAM_MORSEL: usize = 8192;

/// One phase cluster under construction (a [`PhaseInfo`] plus the open
/// transfer-size histogram).
#[derive(Debug, Clone)]
struct Cluster {
    /// Min record start in the cluster (clusters stay sorted by this).
    start: SimTime,
    /// Max record end in the cluster.
    end: SimTime,
    bytes: u64,
    data_ops: u64,
    meta_ops: u64,
    hist: Histogram,
}

/// Online phase detection: maintains the invariant that consecutive
/// clusters are separated by a start-to-end gap strictly above the
/// threshold, so the cluster list is exactly the phase partition the
/// sorted scan would produce, no matter the insertion order.
#[derive(Debug)]
pub(crate) struct PhaseBuilder {
    threshold: Dur,
    clusters: Vec<Cluster>,
}

impl PhaseBuilder {
    pub(crate) fn new(threshold: Dur) -> PhaseBuilder {
        PhaseBuilder {
            threshold,
            clusters: Vec::new(),
        }
    }

    /// Insert interface-selection record `i` of `c`.
    pub(crate) fn insert(&mut self, c: &ColumnarTrace, i: usize) {
        let s = SimTime(c.start[i]);
        let e = SimTime(c.end[i]);
        let is_data = c.op[i].is_data();
        let bytes = c.bytes[i];
        // First cluster whose min start exceeds s; the only join-left
        // candidate is its predecessor (cluster ends strictly increase, so
        // if even the nearest left end is more than a threshold away, every
        // earlier one is too).
        let pos = self.clusters.partition_point(|cl| cl.start <= s);
        let idx = if pos > 0 && s.since(self.clusters[pos - 1].end) <= self.threshold {
            let cl = &mut self.clusters[pos - 1];
            cl.end = cl.end.max(e);
            pos - 1
        } else {
            self.clusters.insert(
                pos,
                Cluster {
                    start: s,
                    end: e,
                    bytes: 0,
                    data_ops: 0,
                    meta_ops: 0,
                    hist: Histogram::new(),
                },
            );
            pos
        };
        let cl = &mut self.clusters[idx];
        if is_data {
            cl.bytes += bytes;
            cl.data_ops += 1;
            if bytes > 0 {
                cl.hist.record(bytes);
            }
        } else {
            cl.meta_ops += 1;
        }
        // The grown end may now bridge the gap to the right neighbor(s).
        while idx + 1 < self.clusters.len()
            && self.clusters[idx + 1].start.since(self.clusters[idx].end) <= self.threshold
        {
            let next = self.clusters.remove(idx + 1);
            let cl = &mut self.clusters[idx];
            cl.end = cl.end.max(next.end);
            cl.bytes += next.bytes;
            cl.data_ops += next.data_ops;
            cl.meta_ops += next.meta_ops;
            cl.hist.merge(&next.hist);
        }
    }

    /// The finished phase list, in start order.
    pub(crate) fn finish(self) -> Vec<PhaseInfo> {
        self.clusters
            .into_iter()
            .map(|cl| PhaseInfo {
                start: cl.start,
                end: cl.end,
                bytes: cl.bytes,
                data_ops: cl.data_ops,
                meta_ops: cl.meta_ops,
                dominant_xfer: dominant_bucket(&cl.hist),
            })
            .collect()
    }
}

/// Per-(rank, file) frontier cells: dense when the id-space product is
/// small (mirrors [`scan_access_pattern`]'s 32 MiB dense limit), `HashMap`
/// otherwise. Each cell holds `(last end offset, last start time)`.
#[derive(Debug)]
enum Cells {
    Dense {
        stride: usize,
        last_end: Vec<u64>,
        last_start: Vec<u64>,
    },
    Sparse(HashMap<(u32, u32), (u64, u64)>),
}

/// Online access-pattern detection over data ops in capture order, with a
/// sorted-order certificate (see the module docs).
#[derive(Debug)]
pub(crate) struct PatternTracker {
    cells: Cells,
    seq: u64,
    total: u64,
    any: bool,
    violated: bool,
}

const DENSE_LIMIT: usize = 4 << 20;

impl PatternTracker {
    pub(crate) fn new(dims: Dims) -> PatternTracker {
        let cells = dims.n_ranks.saturating_mul(dims.n_files);
        let cells = if cells <= DENSE_LIMIT {
            Cells::Dense {
                stride: dims.n_files.max(1),
                // u64::MAX end = cell untouched (same sentinel as the
                // offline scan).
                last_end: vec![u64::MAX; cells],
                last_start: vec![0; cells],
            }
        } else {
            Cells::Sparse(HashMap::new())
        };
        PatternTracker {
            cells,
            seq: 0,
            total: 0,
            any: false,
            violated: false,
        }
    }

    /// Observe selected data record `i` of `c` (capture order).
    pub(crate) fn observe(&mut self, c: &ColumnarTrace, i: usize) {
        let Some(f) = c.file_id(i) else { return };
        self.any = true;
        let new_end = c.offset[i] + c.bytes[i];
        match &mut self.cells {
            Cells::Dense {
                stride,
                last_end,
                last_start,
            } => {
                let cell = c.rank[i] as usize * *stride + f.0 as usize;
                if last_end[cell] != u64::MAX {
                    if c.start[i] < last_start[cell] {
                        self.violated = true;
                    }
                    self.total += 1;
                    if c.offset[i] >= last_end[cell] {
                        self.seq += 1;
                    }
                }
                last_end[cell] = new_end;
                last_start[cell] = c.start[i];
            }
            Cells::Sparse(map) => {
                if let Some(&(prev_end, prev_start)) = map.get(&(c.rank[i], f.0)) {
                    if c.start[i] < prev_start {
                        self.violated = true;
                    }
                    self.total += 1;
                    if c.offset[i] >= prev_end {
                        self.seq += 1;
                    }
                }
                map.insert((c.rank[i], f.0), (new_end, c.start[i]));
            }
        }
    }

    /// Classify. If the certificate failed, re-scan every chunk and
    /// replay the frontier scan in stable start order (exactly the offline
    /// scan's visit order).
    pub(crate) fn finish(self, src: &dyn ChunkSource, ctx: &SelCtx) -> Result<String, SpillError> {
        if !self.any {
            return Ok("Seq".to_string());
        }
        let (seq, total) = if self.violated {
            replay_sorted(src, ctx)?
        } else {
            (self.seq, self.total)
        };
        Ok(if total == 0 || seq as f64 / total as f64 >= 0.85 {
            "Seq".to_string()
        } else {
            "Mixed".to_string()
        })
    }
}

/// Fallback path: collect every selected data record that names a file (in
/// capture order), stable-sort by start, and replay the frontier scan.
fn replay_sorted(src: &dyn ChunkSource, ctx: &SelCtx) -> Result<(u64, u64), SpillError> {
    let mut recs: Vec<(u64, u32, u32, u64, u64)> = Vec::new();
    let mut buf = ColumnarTrace::default();
    src.scan_chunks(&mut |chunk| {
        buf.clear_rows();
        chunk.decode_into(&mut buf, false).expect("chunk re-decode");
        for i in 0..buf.len() {
            if !buf.op[i].is_io() || !buf.op[i].is_data() || !ctx.in_sel(&buf, i) {
                continue;
            }
            if let Some(f) = buf.file_id(i) {
                recs.push((buf.start[i], buf.rank[i], f.0, buf.offset[i], buf.bytes[i]));
            }
        }
    })?;
    // Vec::sort_by_key is stable: equal starts keep capture order, same as
    // the offline path's stable index sort.
    recs.sort_by_key(|r| r.0);
    let mut last: HashMap<(u32, u32), u64> = HashMap::new();
    let mut seq = 0u64;
    let mut total = 0u64;
    for &(start, rank, file, offset, bytes) in &recs {
        let _ = start;
        if let Some(&prev_end) = last.get(&(rank, file)) {
            total += 1;
            if offset >= prev_end {
                seq += 1;
            }
        }
        last.insert((rank, file), offset + bytes);
    }
    Ok((seq, total))
}

impl TraceProfile {
    /// Profile a chunked trace chunk-at-a-time in bounded memory. See the
    /// module docs for the determinism contract ties to
    /// [`TraceProfile::fused`].
    pub fn streaming(t: &ChunkedTrace, job_time: Dur) -> TraceProfile {
        TraceProfile::streaming_source(t, job_time).expect("in-memory chunk scan cannot fail")
    }

    /// Profile any [`ChunkSource`] — an in-memory [`ChunkedTrace`] or an
    /// on-disk [`SpillSource`] — chunk-at-a-time in bounded memory. The
    /// fold visits chunks in capture order regardless of source, so the
    /// profile is bit-identical across sources holding the same chunks.
    /// Errors surface only from a disk-backed source whose re-scan fails.
    pub fn streaming_source(
        src: &dyn ChunkSource,
        job_time: Dur,
    ) -> Result<TraceProfile, SpillError> {
        let meta = src.merged_meta();
        let dims = Dims {
            n_files: meta.n_files.max(src.file_paths().len()),
            n_apps: meta.n_apps.max(src.app_names().len()),
            n_ranks: meta.n_ranks,
        };
        let interface = interface_from_presence(&meta.present);
        let mut iface_mask = [false; 6];
        for l in interface_layers(&interface) {
            iface_mask[layer_idx(l)] = true;
        }
        let mut iface_file = vec![false; dims.n_files];
        for l in 0..6 {
            if iface_mask[l] {
                for f in meta.layer_files[l].iter() {
                    iface_file[f] = true;
                }
            }
        }
        let ctx = SelCtx {
            iface_mask,
            iface_file: &iface_file,
            posix_fallback: !iface_mask[layer_idx(Layer::Posix)],
        };

        let mut global = FusedShard::new(dims);
        let mut phases = PhaseBuilder::new(phase_threshold(job_time));
        let mut pattern = PatternTracker::new(dims);
        let bin = timeline_bin(job_time);
        let mut read_timeline = TimeSeries::new(bin);
        let mut write_timeline = TimeSeries::new(bin);
        let mut data_ops = 0u64;

        // One decode buffer, recycled across chunks and charged against
        // the process-wide trace gauge — this buffer (one chunk of
        // columns) IS the streaming path's resident trace memory.
        let mut buf = ColumnarTrace::default();
        let mut charge = GaugeCharge::new(0);

        src.scan_chunks(&mut |chunk| {
            buf.clear_rows();
            chunk
                .decode_into(&mut buf, false)
                .expect("sealed chunk must decode (checksummed on the persisted path)");
            charge.resync(columnar_capacity_bytes(&buf));

            let mut shard = par::par_fold_shards_sized(
                chunk.rows,
                STREAM_MORSEL,
                || FusedShard::new(dims),
                |acc: &mut FusedShard, range| {
                    acc.io_idx.reserve(range.len());
                    acc.data_idx.reserve(range.len());
                    for i in range {
                        fold_fused_record(acc, &buf, i, &ctx);
                    }
                },
                FusedShard::merge,
            );

            // Feed the online detectors from the chunk-local index lists
            // (ascending = capture order), then drop the lists before the
            // shard folds into the run-global accumulator.
            for &i in &shard.io_idx {
                phases.insert(&buf, i as usize);
            }
            for &i in &shard.data_idx {
                pattern.observe(&buf, i as usize);
            }
            for &i in &shard.data_idx {
                let i = i as usize;
                let ts = match buf.op[i] {
                    recorder_sim::record::OpKind::Read => &mut read_timeline,
                    recorder_sim::record::OpKind::Write => &mut write_timeline,
                    _ => continue,
                };
                ts.add(
                    SimTime(buf.start[i]),
                    SimTime(buf.end[i]),
                    buf.bytes[i] as f64,
                );
            }
            data_ops += shard.data_idx.len() as u64;
            shard.io_idx.clear();
            shard.data_idx.clear();
            global.merge(shard);
        })?;

        let phases = phases.finish();
        let access_pattern = pattern.finish(src, &ctx)?;

        Ok(emit_profile(
            global,
            src.file_paths(),
            src.app_names(),
            job_time,
            interface,
            access_pattern,
            phases,
            read_timeline,
            write_timeline,
            data_ops,
        ))
    }
}

impl Analysis {
    /// Analyze a completed run through the streaming path: the columnar
    /// trace is sealed into compressed chunks, profiled chunk-at-a-time,
    /// and **not retained** (`Analysis::trace` comes back empty — the point
    /// is to hold at most one decoded chunk, not the whole trace). All
    /// profile-level fields are bit-identical to [`Analysis::from_run`];
    /// only the retained `trace` differs. Use [`Analysis::from_run`] when
    /// figure rendering needs the raw records.
    pub fn from_run_streaming(run: &WorkloadRun) -> Analysis {
        let chunked = {
            let c = run.columnar();
            ChunkedTrace::from_columnar(&c, DEFAULT_CHUNK_ROWS)
        };
        let profile = TraceProfile::streaming(&chunked, run.runtime());
        let mut empty = ColumnarTrace::default();
        // Keep the intern tables so path/name lookups on the retained
        // trace stay meaningful even without rows.
        empty.file_paths = chunked.file_paths;
        empty.app_names = chunked.app_names;
        Analysis::assemble(run, empty, profile)
    }

    /// Analyze a completed run through the on-disk spill path: the columnar
    /// trace streams into a crash-consistent segment log at `path`, then the
    /// log is recovered (salvaging the longest committed prefix if `fault`
    /// injected damage) and profiled chunk-at-a-time straight off disk.
    ///
    /// Returns the analysis alongside the recovery verdict. On a clean log
    /// the profile is bit-identical to [`Analysis::from_run_streaming`]; on
    /// a damaged log it matches the in-memory profile truncated to the
    /// surviving records. A crash-class injected fault is absorbed here —
    /// recovery proceeds from whatever the simulated crash left on disk —
    /// while environmental failures (ENOSPC, unwritable dir) surface as
    /// errors.
    pub fn from_run_spilled(
        run: &WorkloadRun,
        path: &Path,
        fault: SpillFaultPlan,
    ) -> Result<(Analysis, FsckReport), SpillError> {
        let c = run.columnar();
        let spill_path = match spill_columnar(&c, DEFAULT_CHUNK_ROWS, path, fault) {
            Ok(sum) => sum.path,
            // A simulated crash leaves a partial segment behind; recover
            // from exactly what the crash left.
            Err(SpillError::Injected { path, .. }) => path,
            Err(e) => return Err(e),
        };
        let src = SpillSource::open_salvaged(&spill_path)?;
        let profile = TraceProfile::streaming_source(&src, run.runtime())?;
        let report = src.report().clone();
        let mut empty = ColumnarTrace::default();
        empty.file_paths = src.file_paths().to_vec();
        empty.app_names = src.app_names().to_vec();
        Ok((Analysis::assemble(run, empty, profile), report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::{detect_phases_sorted, scan_access_pattern};
    use recorder_sim::record::{AppId, FileId, OpKind};

    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x
    }

    /// A messy synthetic trace: several ranks and files, POSIX + STDIO
    /// layers, bursts separated by long gaps (multiple phases), occasional
    /// resilience records.
    fn synthetic(n: usize, seed: u64) -> ColumnarTrace {
        let mut c = ColumnarTrace::default();
        c.file_paths = (0..8).map(|f| format!("/data/f{f}")).collect();
        c.app_names = vec!["writer".into(), "reader".into()];
        let mut s = seed | 1;
        let mut t = 0u64;
        for i in 0..n {
            let r = xorshift(&mut s);
            // Long gap every ~200 records → phase boundaries.
            t += if r % 199 == 0 {
                3_000_000_000
            } else {
                r % 5_000
            };
            let rank = (r >> 8) % 6;
            let file = (r >> 16) % 8;
            let op = match (r >> 24) % 10 {
                0..=3 => OpKind::Write,
                4..=6 => OpKind::Read,
                7 => OpKind::Open,
                8 => OpKind::Close,
                _ => {
                    if i % 97 == 0 {
                        OpKind::Fault
                    } else {
                        OpKind::Stat
                    }
                }
            };
            let layer = if (r >> 32) % 3 == 0 {
                Layer::Stdio
            } else {
                Layer::Posix
            };
            let bytes = (r >> 40) % 65536;
            c.push_row(
                rank as u32,
                rank as u32 / 2,
                AppId(((r >> 5) % 2) as u16),
                layer,
                op,
                SimTime(t),
                SimTime(t + 1_000 + r % 9_000),
                Some(FileId(file as u32)),
                (i as u64) * 4096 % (1 << 30),
                bytes,
            );
        }
        c
    }

    #[test]
    fn streaming_matches_fused_across_chunk_sizes() {
        let job = Dur::from_secs(120);
        for n in [0usize, 1, 63, 1000, 5000] {
            let c = synthetic(n, 0x5eed + n as u64);
            let fused = TraceProfile::fused(&c, job);
            for chunk_rows in [64usize, 1024, DEFAULT_CHUNK_ROWS] {
                let t = ChunkedTrace::from_columnar(&c, chunk_rows);
                let stream = TraceProfile::streaming(&t, job);
                assert_eq!(stream, fused, "n={n} chunk_rows={chunk_rows}");
            }
        }
    }

    #[test]
    fn phase_builder_matches_sorted_scan_on_shuffled_input() {
        let job = Dur::from_secs(120);
        let c = synthetic(3000, 0xabcdef);
        // Offline oracle: sorted scan over every record.
        let mut sorted: Vec<u32> = (0..c.len() as u32).collect();
        sorted.sort_by_key(|&i| c.start[i as usize]);
        let sorted: Vec<u32> = sorted
            .into_iter()
            .filter(|&i| c.op[i as usize].is_io())
            .collect();
        let oracle = detect_phases_sorted(&c, &sorted, job);
        // Online builder fed in three interleaved passes (worst-case
        // out-of-order arrival).
        let mut pb = PhaseBuilder::new(phase_threshold(job));
        for lane in 0..3 {
            for i in (lane..c.len()).step_by(3) {
                if c.op[i].is_io() {
                    pb.insert(&c, i);
                }
            }
        }
        assert_eq!(pb.finish(), oracle);
    }

    #[test]
    fn pattern_tracker_fallback_matches_sorted_scan() {
        // Capture order deliberately violates the per-cell certificate:
        // rank 0 writes file 0 with *decreasing* start times.
        let mut c = ColumnarTrace::default();
        c.file_paths = vec!["/data/f0".into()];
        c.app_names = vec!["w".into()];
        let n = 500usize;
        for i in 0..n {
            let start = (n - i) as u64 * 1_000_000;
            c.push_row(
                0,
                0,
                AppId(0),
                Layer::Posix,
                OpKind::Write,
                SimTime(start),
                SimTime(start + 1000),
                Some(FileId(0)),
                // Offsets ascend in *time* order → "Seq" under the sorted
                // scan, would look reversed in capture order.
                ((n - i) as u64) * 4096,
                4096,
            );
        }
        let job = Dur::from_secs(10);
        let fused = TraceProfile::fused(&c, job);
        let mut sorted: Vec<u32> = (0..n as u32).collect();
        sorted.sort_by_key(|&i| c.start[i as usize]);
        assert_eq!(scan_access_pattern(&c, &sorted), "Seq");
        for chunk_rows in [64usize, 4096] {
            let t = ChunkedTrace::from_columnar(&c, chunk_rows);
            let stream = TraceProfile::streaming(&t, job);
            assert_eq!(stream, fused, "chunk_rows={chunk_rows}");
            assert_eq!(stream.access_pattern, "Seq");
        }
    }

    #[test]
    fn streaming_holds_at_most_one_decoded_chunk() {
        use recorder_sim::chunk::{resident_bound, trace_gauge};
        let c = synthetic(20_000, 77);
        let chunk_rows = 1024usize;
        let t = ChunkedTrace::from_columnar(&c, chunk_rows);
        trace_gauge().reset();
        let _ = TraceProfile::streaming(&t, Dur::from_secs(120));
        let peak = trace_gauge().peak();
        assert!(
            peak <= resident_bound(chunk_rows, 2),
            "peak resident {peak} exceeds bound {}",
            resident_bound(chunk_rows, 2)
        );
    }
}
