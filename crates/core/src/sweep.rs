//! Scenario-parallel simulation driver.
//!
//! The paper's methodology is a sweep: six workloads × configurations ×
//! fault scenarios, each an *independent* discrete-event simulation. This
//! module fans those scenarios across `rt::par` workers while keeping the
//! output **byte-identical to a sequential run at any worker count**:
//!
//! * every scenario gets a stable string id and a seed drawn from a
//!   splittable RNG stream at *registration* time, in registration order —
//!   so seeds depend only on the scenario list, never on which worker runs
//!   what or in which order scenarios finish;
//! * results are merged back in registration order (`rt::par`'s chunk
//!   merge is already deterministic), so tables/YAML/figures rendered from
//!   them cannot observe the worker count;
//! * scenarios that feed other scenarios (the shield experiment's fault
//!   plan opens a quarter of the way into the healthy baseline run) are
//!   expressed as a second wave that consumes the first wave's results —
//!   a barrier, not a lock.
//!
//! The built-in drivers ([`paper_six`], [`fault_sweep`], and the
//! `reconfig::figure7_with`/`figure8_with` sweeps) also *de-duplicate*
//! identical baselines: the fault sweep needs the healthy CosmoFlow run
//! for both the MDS-brownout and the shm-shielding experiment, and now
//! simulates and analyzes it exactly once.

use crate::analyzer::Analysis;
use crate::faultsweep::{
    self, impact_from, mds_plan, nsd_bw, nsd_config, shield_plan, whole_run, FaultImpact,
    OutageBench, ShieldResult,
};
use exemplar_workloads::{cm1, cosmoflow, hacc, jag, montage, montage_pegasus};
use sim_core::SimTime;
use storage_sim::FaultPlan;
use vani_rt::rng::Rng;

/// How a [`ScenarioSet`] executes its scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Driver {
    /// One after another, on the calling thread.
    Sequential,
    /// Fanned across `rt::par` workers (`rt::par::set_threads` controls
    /// the count). Results are identical to [`Driver::Sequential`].
    Parallel,
}

/// Per-scenario context handed to the scenario closure.
#[derive(Debug, Clone)]
pub struct SweepCtx {
    /// Stable scenario id (unique within the set).
    pub id: String,
    /// Position in registration order (= position in the result vector).
    pub index: usize,
    /// Seed of this scenario's private RNG stream, split from the set's
    /// master seed at registration time. Independent across scenarios and
    /// independent of the worker count.
    pub seed: u64,
}

impl SweepCtx {
    /// This scenario's private RNG stream.
    pub fn rng(&self) -> Rng {
        Rng::new(self.seed)
    }
}

struct Scenario<T> {
    ctx: SweepCtx,
    run: Box<dyn Fn(&SweepCtx) -> T + Send + Sync>,
}

/// A scenario that failed under supervision: every attempt panicked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError {
    /// The scenario's stable id.
    pub id: String,
    /// Its position in registration order (= its result slot).
    pub index: usize,
    /// Attempts made before giving up.
    pub attempts: u32,
    /// Panic payload message of the final attempt.
    pub message: String,
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "scenario `{}` (index {}) failed after {} attempt{}: {}",
            self.id,
            self.index,
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
            self.message
        )
    }
}

impl std::error::Error for ScenarioError {}

/// Outcome of a supervised sweep: one slot per scenario, in registration
/// order, healthy results and failures side by side.
#[derive(Debug)]
pub struct SweepReport<T> {
    /// Per-scenario outcomes, in registration order.
    pub results: Vec<Result<T, ScenarioError>>,
}

impl<T> SweepReport<T> {
    /// The healthy results, in registration order.
    pub fn successes(&self) -> Vec<&T> {
        self.results
            .iter()
            .filter_map(|r| r.as_ref().ok())
            .collect()
    }

    /// The failed scenarios, in registration order.
    pub fn failures(&self) -> Vec<&ScenarioError> {
        self.results
            .iter()
            .filter_map(|r| r.as_ref().err())
            .collect()
    }

    /// Whether every scenario succeeded.
    pub fn is_clean(&self) -> bool {
        self.results.iter().all(|r| r.is_ok())
    }

    /// Human-readable failure manifest; empty string when clean.
    pub fn manifest(&self) -> String {
        let fails = self.failures();
        if fails.is_empty() {
            return String::new();
        }
        let mut out = format!(
            "{} of {} scenarios failed:\n",
            fails.len(),
            self.results.len()
        );
        for e in fails {
            out.push_str(&format!("  - {e}\n"));
        }
        out
    }
}

/// Seed of retry attempt `attempt` (0 = the registered seed). Derived
/// deterministically so a retried scenario re-rolls its stream the same way
/// on every machine and at every worker count. Public because the fleet's
/// self-healing scheduler re-derives seeds for requeued jobs the same way.
pub fn retry_seed(seed: u64, attempt: u32) -> u64 {
    if attempt == 0 {
        seed
    } else {
        seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(attempt as u64)
    }
}

/// Run one scenario under panic isolation with bounded, seeded retries.
fn supervise<T>(s: &Scenario<T>, max_attempts: u32) -> Result<T, ScenarioError> {
    let attempts = max_attempts.max(1);
    let mut message = String::new();
    for attempt in 0..attempts {
        let ctx = SweepCtx {
            id: s.ctx.id.clone(),
            index: s.ctx.index,
            seed: retry_seed(s.ctx.seed, attempt),
        };
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| (s.run)(&ctx))) {
            Ok(v) => return Ok(v),
            Err(payload) => message = vani_rt::par::panic_message(payload.as_ref()),
        }
    }
    Err(ScenarioError {
        id: s.ctx.id.clone(),
        index: s.ctx.index,
        attempts,
        message,
    })
}

/// An ordered set of independent simulation scenarios.
pub struct ScenarioSet<T> {
    master: Rng,
    scenarios: Vec<Scenario<T>>,
}

impl<T: Send> ScenarioSet<T> {
    /// New empty set; scenario seeds are split from `master_seed`.
    pub fn new(master_seed: u64) -> Self {
        ScenarioSet {
            master: Rng::new(master_seed),
            scenarios: Vec::new(),
        }
    }

    /// Register a scenario. Its seed is drawn *now*, from the master
    /// stream, so the schedule cannot influence it.
    pub fn add(
        &mut self,
        id: impl Into<String>,
        run: impl Fn(&SweepCtx) -> T + Send + Sync + 'static,
    ) {
        let mut child = self.master.split();
        self.scenarios.push(Scenario {
            ctx: SweepCtx {
                id: id.into(),
                index: self.scenarios.len(),
                seed: child.next_u64(),
            },
            run: Box::new(run),
        });
    }

    /// Number of registered scenarios.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// Registered scenario ids, in registration order.
    pub fn ids(&self) -> Vec<String> {
        self.scenarios.iter().map(|s| s.ctx.id.clone()).collect()
    }

    /// Execute every scenario; results come back in registration order
    /// regardless of the driver or worker count.
    pub fn run(self, driver: Driver) -> Vec<T> {
        let go = |s: Scenario<T>| (s.run)(&s.ctx);
        match driver {
            Driver::Sequential => self.scenarios.into_iter().map(go).collect(),
            Driver::Parallel => vani_rt::par::par_map_owned(self.scenarios, go),
        }
    }

    /// Execute every scenario under supervision: a panicking scenario is
    /// caught *inside* the worker, retried up to `max_attempts` times with
    /// deterministically derived seeds, and finally converted into a typed
    /// [`ScenarioError`] — one bad scenario never poisons the sweep. Healthy
    /// scenarios behave exactly as under [`Self::run`] (attempt 0 uses the
    /// registered seed), and outcomes come back in registration order at
    /// any worker count.
    pub fn run_supervised(self, driver: Driver, max_attempts: u32) -> SweepReport<T> {
        let go = move |s: Scenario<T>| supervise(&s, max_attempts);
        let results = match driver {
            Driver::Sequential => self.scenarios.into_iter().map(go).collect(),
            Driver::Parallel => vani_rt::par::par_map_owned(self.scenarios, go),
        };
        SweepReport { results }
    }
}

/// Run the six paper workloads as one scenario fan-out and analyze them,
/// in the tables' column order. Byte-identical between drivers and at any
/// worker count: every workload keeps its caller-supplied seed.
pub fn paper_six(scale: f64, seed: u64, driver: Driver) -> Vec<Analysis> {
    let mut set = ScenarioSet::new(seed);
    let runners: [(&str, fn(f64, u64) -> exemplar_workloads::WorkloadRun); 6] = [
        ("cm1", cm1::run),
        ("hacc", hacc::run),
        ("cosmoflow", cosmoflow::run),
        ("jag", jag::run),
        ("montage-mpi", montage::run),
        ("montage-pegasus", montage_pegasus::run),
    ];
    for (id, run) in runners {
        set.add(id, move |_| Analysis::from_run(&run(scale, seed)));
    }
    set.run(driver)
}

/// The complete fault sweep (experiments 1–3 of `faultsweep`), produced by
/// one de-duplicated scenario fan-out.
#[derive(Debug, Clone)]
pub struct FaultSweepReport {
    /// MDS-brownout sensitivity: `(cosmoflow, hacc)`.
    pub brownout: (FaultImpact, FaultImpact),
    /// Single-NSD-outage bandwidth cost.
    pub outage: OutageBench,
    /// Preload-to-shm fault shielding.
    pub shield: ShieldResult,
}

impl FaultSweepReport {
    /// Render exactly as `repro -- fault-sweep` prints it.
    pub fn render(&self) -> String {
        faultsweep::render_fault_sweep(&self.brownout, &self.outage, &self.shield)
    }
}

/// Wave-1 scenario results are heterogeneous: workload analyses and raw
/// PFS bandwidth measurements.
enum W1 {
    A(Box<Analysis>),
    Bw(f64),
}

impl W1 {
    fn analysis(self) -> Analysis {
        match self {
            W1::A(a) => *a,
            W1::Bw(_) => unreachable!("scenario returned bandwidth, not an analysis"),
        }
    }
    fn bw(&self) -> f64 {
        match self {
            W1::Bw(b) => *b,
            W1::A(_) => unreachable!("scenario returned an analysis, not bandwidth"),
        }
    }
}

/// Run all three fault-sweep experiments as scenario fan-outs, sharing the
/// distinct baselines: the healthy CosmoFlow baseline feeds both the
/// MDS-brownout comparison and the shm-shielding experiment (previously it
/// was simulated and analyzed twice). Two waves: the shield fault plan
/// opens a quarter of the way into the healthy baseline makespan, so the
/// faulted shield scenarios wait for wave 1.
///
/// Output is identical to calling `mds_brownout_impact` /
/// `nsd_outage_bench` / `shm_shield_impact` back to back, at any worker
/// count, with either driver.
pub fn fault_sweep(scale: f64, seed: u64, slowdown: f64, driver: Driver) -> FaultSweepReport {
    // Wave 1: everything that does not depend on another scenario.
    let mut w1 = ScenarioSet::new(seed);
    w1.add("cosmo/healthy", move |_| {
        W1::A(Box::new(Analysis::from_run(&faultsweep::run_cosmo(
            scale,
            seed,
            FaultPlan::none(),
        ))))
    });
    w1.add("cosmo/mds-brownout", move |_| {
        W1::A(Box::new(Analysis::from_run(&faultsweep::run_cosmo(
            scale,
            seed,
            mds_plan(slowdown),
        ))))
    });
    w1.add("hacc/healthy", move |_| {
        W1::A(Box::new(Analysis::from_run(&faultsweep::run_hacc(
            scale,
            seed,
            FaultPlan::none(),
        ))))
    });
    w1.add("hacc/mds-brownout", move |_| {
        W1::A(Box::new(Analysis::from_run(&faultsweep::run_hacc(
            scale,
            seed,
            mds_plan(slowdown),
        ))))
    });
    w1.add("cosmo-preload/healthy", move |_| {
        W1::A(Box::new(Analysis::from_run(
            &faultsweep::run_cosmo_preload(scale, seed, FaultPlan::none()),
        )))
    });
    w1.add("nsd/healthy-bw", move |_| {
        W1::Bw(nsd_bw(seed, FaultPlan::none()))
    });
    w1.add("nsd/degraded-bw", move |_| {
        W1::Bw(nsd_bw(
            seed,
            FaultPlan::none().with_nsd_outage(0, SimTime::ZERO, whole_run()),
        ))
    });
    let mut r1 = w1.run(driver).into_iter();
    let cosmo_ok = r1.next().unwrap().analysis();
    let cosmo_mds = r1.next().unwrap().analysis();
    let hacc_ok = r1.next().unwrap().analysis();
    let hacc_mds = r1.next().unwrap().analysis();
    let pre_ok = r1.next().unwrap().analysis();
    let healthy_bw = r1.next().unwrap().bw();
    let degraded_bw = r1.next().unwrap().bw();

    // Wave 2: the shield scenarios, whose fault plan is anchored to the
    // shared healthy baseline's makespan (job_time = engine makespan).
    let plan = shield_plan(SimTime::from_nanos(cosmo_ok.job_time.as_nanos() / 4));
    let mut w2 = ScenarioSet::new(seed ^ 1);
    {
        let plan = plan.clone();
        w2.add("cosmo/shield-faulted", move |_| {
            W1::A(Box::new(Analysis::from_run(&faultsweep::run_cosmo(
                scale,
                seed,
                plan.clone(),
            ))))
        });
    }
    w2.add("cosmo-preload/shield-faulted", move |_| {
        W1::A(Box::new(Analysis::from_run(
            &faultsweep::run_cosmo_preload(scale, seed, plan.clone()),
        )))
    });
    let mut r2 = w2.run(driver).into_iter();
    let base_bad = r2.next().unwrap().analysis();
    let pre_bad = r2.next().unwrap().analysis();

    FaultSweepReport {
        brownout: (
            impact_from("Cosmoflow", &cosmo_ok, &cosmo_mds),
            impact_from("HACC (FPP)", &hacc_ok, &hacc_mds),
        ),
        outage: OutageBench {
            n_servers: nsd_config().n_data_servers as u32,
            healthy_bw,
            degraded_bw,
        },
        shield: ShieldResult {
            baseline: impact_from("Cosmoflow (GPFS)", &cosmo_ok, &base_bad),
            preloaded: impact_from("Cosmoflow (preload)", &pre_ok, &pre_bad),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_stable_and_distinct() {
        let mut a = ScenarioSet::<u64>::new(42);
        a.add("x", |c| c.seed);
        a.add("y", |c| c.seed);
        a.add("z", |c| c.seed);
        let mut b = ScenarioSet::<u64>::new(42);
        b.add("x", |c| c.seed);
        b.add("y", |c| c.seed);
        b.add("z", |c| c.seed);
        assert_eq!(a.ids(), vec!["x", "y", "z"]);
        let sa = a.run(Driver::Sequential);
        let sb = b.run(Driver::Parallel);
        // Same master seed -> same per-scenario seeds, either driver.
        assert_eq!(sa, sb);
        // Streams are pairwise distinct.
        assert_ne!(sa[0], sa[1]);
        assert_ne!(sa[1], sa[2]);
        // And a different master gives different streams.
        let mut c = ScenarioSet::<u64>::new(43);
        c.add("x", |c| c.seed);
        assert_ne!(c.run(Driver::Sequential)[0], sa[0]);
    }

    #[test]
    fn results_come_back_in_registration_order() {
        let mut set = ScenarioSet::new(1);
        for i in 0..20u64 {
            set.add(format!("s{i}"), move |ctx| (ctx.index, i));
        }
        let out = set.run(Driver::Parallel);
        for (i, (idx, v)) in out.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(*v, i as u64);
        }
    }

    #[test]
    fn scenario_rng_is_reproducible() {
        let mut set = ScenarioSet::new(9);
        set.add("a", |ctx| ctx.rng().next_u64());
        set.add("b", |ctx| ctx.rng().next_u64());
        let first = set.run(Driver::Sequential);
        let mut again = ScenarioSet::new(9);
        again.add("a", |ctx| ctx.rng().next_u64());
        again.add("b", |ctx| ctx.rng().next_u64());
        assert_eq!(first, again.run(Driver::Parallel));
    }

    #[test]
    fn supervised_sweep_isolates_a_panicking_scenario() {
        let build = || {
            let mut set = ScenarioSet::new(11);
            set.add("good-a", |ctx| ctx.index as u64);
            set.add("boom", |_| -> u64 { panic!("synthetic scenario failure") });
            set.add("good-b", |ctx| ctx.index as u64 * 10);
            set
        };
        for driver in [Driver::Sequential, Driver::Parallel] {
            let report = build().run_supervised(driver, 2);
            assert_eq!(report.results.len(), 3);
            assert!(!report.is_clean());
            assert_eq!(report.successes(), vec![&0u64, &20u64]);
            let fails = report.failures();
            assert_eq!(fails.len(), 1);
            assert_eq!(fails[0].id, "boom");
            assert_eq!(fails[0].index, 1);
            assert_eq!(fails[0].attempts, 2);
            assert!(fails[0].message.contains("synthetic scenario failure"));
            assert!(report.manifest().contains("1 of 3 scenarios failed"));
            assert!(report.manifest().contains("`boom`"));
        }
    }

    #[test]
    fn supervised_retries_rederive_seeds_deterministically() {
        use std::sync::atomic::{AtomicU32, Ordering};
        use std::sync::Arc;
        // A scenario that panics on its first attempt and records the seed
        // it saw on the second: the retry must run, and the retry seed must
        // differ from the registered one but be reproducible.
        let run_once = || {
            let calls = Arc::new(AtomicU32::new(0));
            let mut set = ScenarioSet::new(5);
            let c = calls.clone();
            set.add("flaky", move |ctx| {
                if c.fetch_add(1, Ordering::SeqCst) == 0 {
                    panic!("first attempt dies");
                }
                ctx.seed
            });
            set.add("solid", |ctx| ctx.seed);
            set.run_supervised(Driver::Sequential, 3)
        };
        let a = run_once();
        let b = run_once();
        assert!(a.is_clean());
        let flaky_a = *a.results[0].as_ref().unwrap();
        let flaky_b = *b.results[0].as_ref().unwrap();
        assert_eq!(flaky_a, flaky_b, "retry seeds are machine-independent");
        // The solid scenario saw its registered (attempt-0) seed, and the
        // retried one saw a derived seed.
        let mut fresh = ScenarioSet::new(5);
        fresh.add("flaky", |ctx| ctx.seed);
        fresh.add("solid", |ctx| ctx.seed);
        let seeds = fresh.run(Driver::Sequential);
        assert_eq!(*a.results[1].as_ref().unwrap(), seeds[1]);
        assert_ne!(flaky_a, seeds[0], "retry must re-roll the seed");
    }

    #[test]
    fn supervision_leaves_healthy_sweeps_untouched() {
        let mut plain = ScenarioSet::new(3);
        let mut sup = ScenarioSet::new(3);
        for i in 0..8u64 {
            plain.add(format!("s{i}"), move |ctx| ctx.seed ^ i);
            sup.add(format!("s{i}"), move |ctx| ctx.seed ^ i);
        }
        let want = plain.run(Driver::Sequential);
        let got = sup.run_supervised(Driver::Parallel, 3);
        assert!(got.is_clean());
        assert!(got.manifest().is_empty());
        let got: Vec<u64> = got.results.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn fault_sweep_matches_standalone_experiments() {
        // The de-duplicated two-wave fan-out must reproduce the standalone
        // experiment functions exactly (same sims, same seeds).
        let r = fault_sweep(0.02, 7, 20.0, Driver::Sequential);
        let (c, h) = faultsweep::mds_brownout_impact(0.02, 7, 20.0);
        let o = faultsweep::nsd_outage_bench(7);
        let s = faultsweep::shm_shield_impact(0.02, 7);
        assert_eq!(
            r.render(),
            faultsweep::render_fault_sweep(&(c, h), &o, &s),
            "deduped sweep diverged from standalone experiments"
        );
    }
}
