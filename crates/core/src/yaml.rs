//! YAML emission of characterized entities — the machine-readable artifact
//! the paper's Analyzer produces ("generate a YAML file of entities and
//! attributes with workload-specific values", §IV-C) for the storage system
//! to consume.
//!
//! Hand-rolled emitter: the schema is flat (entities → attributes → scalar
//! values), so a dependency-free writer keeps the suite lean.

use crate::entities::Entity;

/// Escape a YAML scalar if needed.
fn scalar(s: &str) -> String {
    let needs_quote = s.is_empty()
        || s.contains(':')
        || s.contains('#')
        || s.contains('\'')
        || s.contains('"')
        || s.starts_with(|c: char| c.is_whitespace() || c == '-' || c == '%')
        || s.ends_with(char::is_whitespace);
    if needs_quote {
        format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
    } else {
        s.to_string()
    }
}

/// Emit a set of entities grouped by the paper's three top-level groups.
pub fn emit(entities: &[Entity]) -> String {
    let mut out = String::from("# Vani workload characterization\n");
    for group in ["job", "software", "data"] {
        let members: Vec<&Entity> = entities
            .iter()
            .filter(|e| e.etype.group() == group)
            .collect();
        if members.is_empty() {
            continue;
        }
        out.push_str(&format!("{group}:\n"));
        for e in members {
            out.push_str(&format!("  - type: {}\n", e.etype.label()));
            out.push_str(&format!("    name: {}\n", scalar(&e.name)));
            out.push_str("    attributes:\n");
            for (k, v) in &e.attrs {
                out.push_str(&format!("      {}: {}\n", scalar(k), scalar(&v.render())));
            }
        }
    }
    out
}

/// Minimal parser for round-trip validation: returns (type, name, #attrs)
/// triples. Not a general YAML parser — just enough to verify our emission.
pub fn parse_summary(yaml: &str) -> Vec<(String, String, usize)> {
    let mut out = Vec::new();
    let mut cur: Option<(String, String, usize)> = None;
    for line in yaml.lines() {
        let t = line.trim();
        if let Some(ty) = t.strip_prefix("- type: ") {
            if let Some(c) = cur.take() {
                out.push(c);
            }
            cur = Some((ty.to_string(), String::new(), 0));
        } else if let Some(name) = t.strip_prefix("name: ") {
            if let Some(c) = cur.as_mut() {
                c.1 = name.trim_matches('"').to_string();
            }
        } else if t.contains(": ")
            && !t.starts_with("attributes")
            && !t.ends_with(':')
            && cur.is_some()
            && line.starts_with("      ")
        {
            cur.as_mut().expect("checked").2 += 1;
        }
    }
    if let Some(c) = cur.take() {
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entities::{AttrValue, EntityType};

    #[test]
    fn emission_round_trips_through_summary_parse() {
        let ents = vec![
            Entity::new(EntityType::JobConfiguration, "CM1")
                .with("#nodes", AttrValue::Count(32))
                .with("pfs_dir", AttrValue::Str("/p/gpfs1".into())),
            Entity::new(EntityType::Dataset, "CM1").with("size", AttrValue::Bytes(20 << 30)),
        ];
        let yaml = emit(&ents);
        assert!(yaml.contains("job:"));
        assert!(yaml.contains("data:"));
        let parsed = parse_summary(&yaml);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0, "job_configuration");
        assert_eq!(parsed[0].1, "CM1");
        assert_eq!(parsed[0].2, 2);
        assert_eq!(parsed[1].0, "dataset");
        assert_eq!(parsed[1].2, 1);
    }

    #[test]
    fn scalars_with_special_chars_are_quoted() {
        assert_eq!(scalar("/p/gpfs1"), "/p/gpfs1");
        assert_eq!(scalar("a: b"), "\"a: b\"");
        assert_eq!(scalar("98.0%, 2.0%"), "98.0%, 2.0%");
        assert_eq!(scalar("%starts"), "\"%starts\"");
        assert_eq!(scalar(""), "\"\"");
    }
}
