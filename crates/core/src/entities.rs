//! The entity/attribute model of §IV-B.
//!
//! A characterized workload is described by a set of [`Entity`] values, each
//! belonging to one of the paper's ten entity types and carrying a list of
//! named [`AttrValue`] attributes. This is the machine-readable object the
//! Analyzer emits (as YAML) and the storage system would consume to
//! configure itself.

use sim_core::units::{fmt_bw, fmt_bytes, fmt_count, fmt_pct};

/// The ten entity types of the characterization (§IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EntityType {
    /// Job scheduling and allocated resources (Table II).
    JobConfiguration,
    /// Workflow-level behavior and interactions (Table III).
    Workflow,
    /// One application and its processes (Table IV).
    Application,
    /// One I/O phase within an application (Table V).
    IoPhase,
    /// High-level I/O library features (Table VI).
    HighLevelIo,
    /// Middleware libraries in the path (Table VII).
    Middleware,
    /// Node-local storage tier (Table VIII).
    NodeLocalStorage,
    /// Shared storage tier (Table IX).
    SharedStorage,
    /// The dataset as a whole (Table X).
    Dataset,
    /// One file (Table XI).
    File,
}

impl EntityType {
    /// Display label used in YAML output and table titles.
    pub fn label(&self) -> &'static str {
        match self {
            EntityType::JobConfiguration => "job_configuration",
            EntityType::Workflow => "workflow",
            EntityType::Application => "application",
            EntityType::IoPhase => "io_phase",
            EntityType::HighLevelIo => "high_level_io",
            EntityType::Middleware => "middleware",
            EntityType::NodeLocalStorage => "node_local_storage",
            EntityType::SharedStorage => "shared_storage",
            EntityType::Dataset => "dataset",
            EntityType::File => "file",
        }
    }

    /// The paper's three top-level groups: Job, Software, Data.
    pub fn group(&self) -> &'static str {
        match self {
            EntityType::JobConfiguration
            | EntityType::Workflow
            | EntityType::Application
            | EntityType::IoPhase => "job",
            EntityType::HighLevelIo
            | EntityType::Middleware
            | EntityType::NodeLocalStorage
            | EntityType::SharedStorage => "software",
            EntityType::Dataset | EntityType::File => "data",
        }
    }
}

/// One attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Free text ("POSIX", "/dev/shm", "Sequential").
    Str(String),
    /// A count (# nodes, # files).
    Count(u64),
    /// A byte quantity.
    Bytes(u64),
    /// Seconds.
    Seconds(f64),
    /// A fraction in [0, 1], rendered as a percentage.
    Fraction(f64),
    /// Bandwidth, bytes/second.
    Bandwidth(f64),
    /// A pair rendered "a%, b%" (the "I/O ops dist (data, meta)" style).
    Split(f64, f64),
    /// A size range rendered "lo-hi".
    Range(u64, u64),
    /// Missing / not applicable.
    Na,
}

impl AttrValue {
    /// Render for tables and YAML.
    pub fn render(&self) -> String {
        match self {
            AttrValue::Str(s) => s.clone(),
            AttrValue::Count(n) => fmt_count(*n),
            AttrValue::Bytes(b) => fmt_bytes(*b),
            AttrValue::Seconds(s) => {
                if *s >= 100.0 {
                    format!("{s:.0}s")
                } else {
                    format!("{s:.2}s")
                }
            }
            AttrValue::Fraction(f) => fmt_pct(*f),
            AttrValue::Bandwidth(b) => fmt_bw(*b),
            AttrValue::Split(a, b) => format!("{}, {}", fmt_pct(*a), fmt_pct(*b)),
            AttrValue::Range(lo, hi) => {
                if lo == hi {
                    fmt_bytes(*lo)
                } else {
                    format!("{}-{}", fmt_bytes(*lo), fmt_bytes(*hi))
                }
            }
            AttrValue::Na => "NA".to_string(),
        }
    }
}

/// A characterized entity: type, instance name, attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct Entity {
    /// Which entity type this is.
    pub etype: EntityType,
    /// Instance name (workload name, file path, app name…).
    pub name: String,
    /// Ordered attribute list.
    pub attrs: Vec<(String, AttrValue)>,
}

impl Entity {
    /// New empty entity.
    pub fn new(etype: EntityType, name: &str) -> Self {
        Entity {
            etype,
            name: name.to_string(),
            attrs: Vec::new(),
        }
    }

    /// Add an attribute (builder style).
    pub fn with(mut self, key: &str, value: AttrValue) -> Self {
        self.attrs.push((key.to_string(), value));
        self
    }

    /// Look up an attribute.
    pub fn get(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entity_groups_match_paper() {
        assert_eq!(EntityType::JobConfiguration.group(), "job");
        assert_eq!(EntityType::IoPhase.group(), "job");
        assert_eq!(EntityType::HighLevelIo.group(), "software");
        assert_eq!(EntityType::SharedStorage.group(), "software");
        assert_eq!(EntityType::Dataset.group(), "data");
        assert_eq!(EntityType::File.group(), "data");
    }

    #[test]
    fn attribute_rendering() {
        assert_eq!(AttrValue::Count(1280).render(), "1,280");
        assert_eq!(AttrValue::Bytes(1 << 30).render(), "1.00GiB");
        assert_eq!(AttrValue::Fraction(0.98).render(), "98.0%");
        assert_eq!(AttrValue::Split(0.02, 0.98).render(), "2.0%, 98.0%");
        assert_eq!(AttrValue::Seconds(3567.0).render(), "3567s");
        assert_eq!(AttrValue::Seconds(0.3).render(), "0.30s");
        assert_eq!(
            AttrValue::Range(4096, 16 << 20).render(),
            "4.00KiB-16.00MiB"
        );
        assert_eq!(AttrValue::Na.render(), "NA");
    }

    #[test]
    fn builder_and_lookup() {
        let e = Entity::new(EntityType::Dataset, "cosmoflow")
            .with("format", AttrValue::Str("HDF5".into()))
            .with("#files", AttrValue::Count(49_664));
        assert_eq!(e.get("format"), Some(&AttrValue::Str("HDF5".into())));
        assert_eq!(e.get("#files"), Some(&AttrValue::Count(49_664)));
        assert_eq!(e.get("missing"), None);
    }
}
