//! The attribute → optimization mapping of §IV-D.
//!
//! Given a workload's [`Analysis`], the rule engine emits
//! [`Recommendation`]s with the attribute-based rationale the paper walks
//! through: which attributes fired the rule, and what the storage system
//! should reconfigure. The two §V case studies are the first two rules.

use crate::analyzer::Analysis;
use sim_core::stats::DistributionFit;
use sim_core::units::{GIB, KIB, MIB};

/// A storage-stack reconfiguration the rules can recommend.
#[derive(Debug, Clone, PartialEq)]
pub enum Recommendation {
    /// §V-A: preload the dataset into node-local shm and read locally
    /// (CosmoFlow). Fired by small shared files + metadata-dominated I/O +
    /// unused node memory.
    PreloadDatasetToShm {
        /// Bytes each node must hold (dataset / nodes).
        per_node_bytes: u64,
    },
    /// §V-B: place intermediate files on the node-local tier (Montage).
    /// Fired by produce-then-consume locality + small transfers.
    IntermediatesToNodeLocal {
        /// Estimated intermediate bytes per node.
        per_node_bytes: u64,
    },
    /// §IV-D3: set the PFS stripe size to the workload's dominant transfer
    /// size for its most important files.
    SetStripeSize {
        /// Recommended stripe bytes.
        bytes: u64,
    },
    /// §IV-D3: disable byte-range locking when no cross-process data
    /// dependency exists (FPP workloads).
    DisableLocking,
    /// §IV-D1: enable collective buffering with this many aggregators.
    CollectiveBuffering {
        /// Suggested `cb_nodes`.
        cb_nodes: u32,
    },
    /// §IV-D5: chunk the HDF5 datasets at the access granularity.
    EnableChunking {
        /// Chunk bytes.
        chunk_bytes: u64,
    },
    /// §IV-D5: apply compression (data-distribution dependent).
    ApplyCompression {
        /// The fitted distribution driving the codec choice.
        dist: DistributionFit,
        /// Expected size ratio (output/input).
        expected_ratio: f64,
    },
    /// §IV-D2: overlap I/O with compute via async I/O (distinct phases).
    AsyncIo,
}

impl Recommendation {
    /// Short identifier for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Recommendation::PreloadDatasetToShm { .. } => "preload-dataset-to-shm",
            Recommendation::IntermediatesToNodeLocal { .. } => "intermediates-to-node-local",
            Recommendation::SetStripeSize { .. } => "set-stripe-size",
            Recommendation::DisableLocking => "disable-locking",
            Recommendation::CollectiveBuffering { .. } => "collective-buffering",
            Recommendation::EnableChunking { .. } => "enable-chunking",
            Recommendation::ApplyCompression { .. } => "apply-compression",
            Recommendation::AsyncIo => "async-io",
        }
    }
}

/// A fired rule: the recommendation plus its attribute-based rationale.
#[derive(Debug, Clone)]
pub struct Advice {
    /// What to reconfigure.
    pub recommendation: Recommendation,
    /// Which attributes fired the rule, in the paper's vocabulary.
    pub rationale: String,
}

/// Node memory assumed available for staging (Lassen: 256 GiB, half
/// usable as tmpfs).
const NODE_SHM_BYTES: u64 = 128 * GIB;

/// Run the §IV-D rules over an analysis.
pub fn recommend(a: &Analysis) -> Vec<Advice> {
    let mut out = Vec::new();
    let meta_frac = 1.0 - a.data_frac();
    let (lo_gran, hi_gran) = a.granularity();
    let per_node_dataset = a.dataset_bytes() / a.nodes.max(1) as u64;

    // §V-A rule: shared small files + metadata-dominated + dataset fits in
    // per-node shm after partitioning.
    if a.shared_files() > 0
        && meta_frac > 0.5
        && a.dataset_bytes() > 0
        && per_node_dataset <= NODE_SHM_BYTES
        && a.read_bytes > a.write_bytes
    {
        out.push(Advice {
            recommendation: Recommendation::PreloadDatasetToShm {
                per_node_bytes: per_node_dataset,
            },
            rationale: format!(
                "shared file access ({} files), I/O ops dist {}% metadata, dataset {} fits 1/{} per node in shm",
                a.shared_files(),
                (meta_frac * 100.0).round(),
                sim_core::units::fmt_bytes(a.dataset_bytes()),
                a.nodes
            ),
        });
    }

    // §V-B rule: workflow whose intermediate files are produced and
    // consumed locally with small transfers.
    let intermediates: u64 = a
        .files
        .iter()
        .filter(|f| !f.writers.is_empty() && !f.readers.is_empty())
        .map(|f| f.size)
        .sum();
    if a.apps.len() > 1 && intermediates > 0 && lo_gran <= 4 * KIB {
        let per_node = intermediates / a.nodes.max(1) as u64;
        if per_node <= NODE_SHM_BYTES {
            out.push(Advice {
                recommendation: Recommendation::IntermediatesToNodeLocal {
                    per_node_bytes: per_node,
                },
                rationale: format!(
                    "app data dependency ({} edges), intermediate files {} produced+consumed, transfer granularity ≤4KiB",
                    a.app_deps.len(),
                    sim_core::units::fmt_bytes(intermediates)
                ),
            });
        }
    }

    // Stripe-size rule: dominant transfer of important files.
    if hi_gran >= 1 * MIB {
        out.push(Advice {
            recommendation: Recommendation::SetStripeSize { bytes: hi_gran },
            rationale: format!(
                "I/O granularity per operation up to {} on important files",
                sim_core::units::fmt_bytes(hi_gran)
            ),
        });
    }

    // Locking rule: pure FPP → no data dependency between processes.
    if a.shared_files() == 0 && a.n_files() > 0 {
        out.push(Advice {
            recommendation: Recommendation::DisableLocking,
            rationale: "no data dependency in apps and processes (strict FPP)".to_string(),
        });
    }

    // Collective buffering: shared-file MPI-IO access.
    if a.interface == "HDF5-MPI-IO" && a.shared_files() > 0 {
        out.push(Advice {
            recommendation: Recommendation::CollectiveBuffering { cb_nodes: a.nodes },
            rationale: format!(
                "collective shared-file access from {} processes; cb_nodes = #nodes = {}",
                a.n_ranks, a.nodes
            ),
        });
    }

    // Chunking: HDF5 + small accesses on large files.
    if a.interface == "HDF5-MPI-IO" && lo_gran <= 1 * MIB {
        out.push(Advice {
            recommendation: Recommendation::EnableChunking {
                chunk_bytes: lo_gran.max(64 * KIB),
            },
            rationale: format!(
                "unchunked HDF5 with {} accesses; chunk at the access granularity",
                sim_core::units::fmt_bytes(lo_gran.max(1))
            ),
        });
    }

    // Compression: distribution-driven (uniform data inflates — skip it).
    match a.data_dist {
        DistributionFit::Normal => out.push(Advice {
            recommendation: Recommendation::ApplyCompression {
                dist: a.data_dist,
                expected_ratio: 0.55,
            },
            rationale: "normal data distribution compresses well".to_string(),
        }),
        DistributionFit::Gamma => out.push(Advice {
            recommendation: Recommendation::ApplyCompression {
                dist: a.data_dist,
                expected_ratio: 0.40,
            },
            rationale: "gamma data distribution compresses very well".to_string(),
        }),
        _ => {}
    }

    // Async I/O: distinct compute and I/O phases.
    if a.phases.len() >= 2 && a.io_time_frac < 0.5 {
        out.push(Advice {
            recommendation: Recommendation::AsyncIo,
            rationale: format!(
                "{} distinct I/O phases with compute between them; overlap I/O with compute",
                a.phases.len()
            ),
        });
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::Analysis;
    use exemplar_workloads::{cosmoflow, hacc, montage};

    fn has(advice: &[Advice], name: &str) -> bool {
        advice.iter().any(|a| a.recommendation.name() == name)
    }

    #[test]
    fn cosmoflow_gets_the_preload_rule() {
        let run = cosmoflow::run(0.002, 5);
        let a = Analysis::from_run(&run);
        let advice = recommend(&a);
        assert!(
            has(&advice, "preload-dataset-to-shm"),
            "advice: {:?}",
            advice
                .iter()
                .map(|x| x.recommendation.name())
                .collect::<Vec<_>>()
        );
        assert!(has(&advice, "collective-buffering"));
        assert!(has(&advice, "enable-chunking"));
        // Gamma-distributed data → compression advised.
        assert!(has(&advice, "apply-compression"));
    }

    #[test]
    fn montage_gets_the_node_local_rule() {
        let run = montage::run(0.02, 2);
        let a = Analysis::from_run(&run);
        let advice = recommend(&a);
        assert!(
            has(&advice, "intermediates-to-node-local"),
            "advice: {:?}",
            advice
                .iter()
                .map(|x| x.recommendation.name())
                .collect::<Vec<_>>()
        );
        // Montage is not a preload candidate: data-op dominated.
        assert!(!has(&advice, "preload-dataset-to-shm"));
    }

    #[test]
    fn hacc_gets_locking_disabled_not_preload() {
        let run = hacc::run(0.02, 1);
        let a = Analysis::from_run(&run);
        let advice = recommend(&a);
        assert!(has(&advice, "disable-locking"));
        assert!(!has(&advice, "preload-dataset-to-shm"));
        // Large sequential transfers → stripe-size advice.
        assert!(has(&advice, "set-stripe-size"));
    }

    #[test]
    fn rationales_cite_attributes() {
        let run = cosmoflow::run(0.002, 5);
        let a = Analysis::from_run(&run);
        for adv in recommend(&a) {
            assert!(!adv.rationale.is_empty());
        }
    }
}
