//! The Vani Analyzer: extracts the paper's workload attributes from a
//! captured run (§IV-C).
//!
//! Mirrors the paper's pipeline: the Recorder trace is converted to columns
//! (`recorder-sim::columnar`, the parquet step) and the attributes are
//! computed with group-by/filter kernels (the DASK step). `JobUtility`-style
//! system attributes come from the run's allocation and storage
//! configuration rather than the trace.

use exemplar_workloads::harness::{WorkloadKind, WorkloadRun};
use recorder_sim::record::{Layer, OpKind};
use recorder_sim::ColumnarTrace;
use sim_core::stats::{DistributionFit, Summary};

use sim_core::{Dur, Histogram, SimTime, TimeSeries};
use std::collections::{HashMap, HashSet};

/// Per-file profile: who touches it and how much.
#[derive(Debug, Clone, Default)]
pub struct FileProfile {
    /// Interned path.
    pub path: String,
    /// Ranks that read it.
    pub readers: HashSet<u32>,
    /// Ranks that write it.
    pub writers: HashSet<u32>,
    /// Ranks that performed metadata ops on it (open/close/stat).
    pub openers: HashSet<u32>,
    /// Bytes read.
    pub read_bytes: u64,
    /// Bytes written.
    pub write_bytes: u64,
    /// Data ops.
    pub data_ops: u64,
    /// Metadata ops.
    pub meta_ops: u64,
    /// Total time spent in ops on this file.
    pub time: Dur,
    /// Final size (from the trace's high-water mark).
    pub size: u64,
}

impl FileProfile {
    /// Every rank that touches the file (data or metadata access — the
    /// paper classifies CM1's step files as shared because many leaders
    /// open them even though only rank 0 writes).
    pub fn touchers(&self) -> usize {
        self.readers
            .union(&self.writers)
            .chain(self.openers.difference(&self.readers))
            .collect::<HashSet<_>>()
            .len()
    }

    /// Shared = touched by more than one rank (the paper's classification).
    pub fn is_shared(&self) -> bool {
        self.touchers() > 1
    }
}

/// One detected I/O phase (Table V).
#[derive(Debug, Clone)]
pub struct PhaseInfo {
    /// Phase start.
    pub start: SimTime,
    /// Phase end.
    pub end: SimTime,
    /// Bytes moved in the phase.
    pub bytes: u64,
    /// Data ops in the phase.
    pub data_ops: u64,
    /// Metadata ops in the phase.
    pub meta_ops: u64,
    /// Dominant transfer size in the phase.
    pub dominant_xfer: u64,
}

impl PhaseInfo {
    /// Phase duration.
    pub fn runtime(&self) -> Dur {
        self.end.since(self.start)
    }
}

/// Per-application (workflow step) profile.
#[derive(Debug, Clone, Default)]
pub struct AppProfile {
    /// Kernel name.
    pub name: String,
    /// Distinct ranks that executed it.
    pub processes: usize,
    /// Bytes read / written.
    pub read_bytes: u64,
    /// Bytes written.
    pub write_bytes: u64,
    /// Data / metadata ops.
    pub data_ops: u64,
    /// Metadata ops.
    pub meta_ops: u64,
    /// Wall span of its records.
    pub first: SimTime,
    /// Last record end.
    pub last: SimTime,
}

/// The complete analysis of one workload run.
pub struct Analysis {
    /// Which workload.
    pub kind: WorkloadKind,
    /// Scale it ran at.
    pub scale: f64,
    /// Job runtime (engine makespan).
    pub job_time: Dur,
    /// Mean per-rank time spent inside I/O calls, as a fraction of runtime.
    pub io_time_frac: f64,
    /// Nodes / ranks-per-node / total ranks.
    pub nodes: u32,
    /// Ranks per node.
    pub ranks_per_node: u32,
    /// Total ranks.
    pub n_ranks: u32,
    /// Bytes read at the interface layer.
    pub read_bytes: u64,
    /// Bytes written at the interface layer.
    pub write_bytes: u64,
    /// Interface-layer data / metadata op counts.
    pub data_ops: u64,
    /// Metadata ops at the interface layer.
    pub meta_ops: u64,
    /// Detected interface ("POSIX", "STDIO", "HDF5-MPI-IO").
    pub interface: String,
    /// "Sequential" / "Mixed" access pattern.
    pub access_pattern: String,
    /// Request-size histogram (Figures 1a–6a, left panel).
    pub req_sizes: Histogram,
    /// Per-request bandwidth histogram, bytes/s buckets (right panel).
    pub req_bandwidth: Histogram,
    /// Read-bytes timeline (Figures 1c–6c).
    pub read_timeline: TimeSeries,
    /// Write-bytes timeline.
    pub write_timeline: TimeSeries,
    /// Per-file profiles.
    pub files: Vec<FileProfile>,
    /// Detected I/O phases.
    pub phases: Vec<PhaseInfo>,
    /// Per-application profiles (workflows have several).
    pub apps: Vec<AppProfile>,
    /// App-level data dependencies (producer → consumer).
    pub app_deps: Vec<(String, String)>,
    /// Dataset value-distribution fit (Table VI "Data dist").
    pub data_dist: DistributionFit,
    /// The columnar trace, retained for figure rendering.
    pub trace: ColumnarTrace,
}

impl Analysis {
    /// Analyze a completed run.
    pub fn from_run(run: &WorkloadRun) -> Analysis {
        let c = run.columnar();
        let job_time = run.runtime();
        let interface = detect_interface(&c);
        let iface_layers = interface_layers(&interface);

        // Interface-layer selections, plus POSIX ops on files the higher
        // layers never touch (e.g. checkpoints written with raw
        // open/write/close while the dataset goes through HDF5 or stdio).
        let iface_files: HashSet<u32> = (0..c.len())
            .filter(|&i| c.op[i].is_io() && iface_layers.contains(&c.layer[i]))
            .filter_map(|i| c.file_id(i).map(|f| f.0))
            .collect();
        let io_sel = c.select(|i| {
            c.op[i].is_io()
                && (iface_layers.contains(&c.layer[i])
                    || (c.layer[i] == Layer::Posix
                        && !iface_layers.contains(&Layer::Posix)
                        && c.file_id(i).is_some_and(|f| !iface_files.contains(&f.0))))
        });
        let data_sel: Vec<u32> = io_sel
            .iter()
            .copied()
            .filter(|&i| c.op[i as usize].is_data())
            .collect();
        let meta_sel: Vec<u32> = io_sel
            .iter()
            .copied()
            .filter(|&i| c.op[i as usize].is_meta())
            .collect();

        let read_bytes = c.sum_bytes(
            &data_sel
                .iter()
                .copied()
                .filter(|&i| c.op[i as usize] == OpKind::Read)
                .collect::<Vec<_>>(),
        );
        let write_bytes = c.sum_bytes(
            &data_sel
                .iter()
                .copied()
                .filter(|&i| c.op[i as usize] == OpKind::Write)
                .collect::<Vec<_>>(),
        );

        // I/O time fraction: mean per-rank busy-in-I/O time over runtime.
        let by_rank = c.group_by_rank(&io_sel);
        let io_time_frac = if by_rank.is_empty() || job_time == Dur::ZERO {
            0.0
        } else {
            let mean: f64 = by_rank.values().map(|g| g.time.as_secs_f64()).sum::<f64>()
                / by_rank.len() as f64;
            (mean / job_time.as_secs_f64()).min(1.0)
        };

        // Histograms over data ops.
        let mut req_sizes = Histogram::new();
        let mut req_bandwidth = Histogram::new();
        for &i in &data_sel {
            let i = i as usize;
            if c.bytes[i] == 0 {
                continue;
            }
            req_sizes.record(c.bytes[i]);
            let bw = Dur(c.end[i] - c.start[i]).bandwidth(c.bytes[i]);
            if bw.is_finite() {
                req_bandwidth.record(bw as u64);
            }
        }

        // Timelines (128 bins over the run).
        let bin = Dur((job_time.as_nanos() / 128).max(1));
        let mut read_timeline = TimeSeries::new(bin);
        let mut write_timeline = TimeSeries::new(bin);
        for &i in &data_sel {
            let i = i as usize;
            let ts = match c.op[i] {
                OpKind::Read => &mut read_timeline,
                OpKind::Write => &mut write_timeline,
                _ => continue,
            };
            ts.add(SimTime(c.start[i]), SimTime(c.end[i]), c.bytes[i] as f64);
        }

        let files = profile_files(&c, &io_sel);
        let phases = detect_phases(&c, &io_sel, job_time);
        let (apps, app_deps) = profile_apps(&c, run);
        let access_pattern = detect_access_pattern(&c, &data_sel);
        let data_dist = fit_data_distribution(run, &files);

        Analysis {
            kind: run.kind,
            scale: run.scale,
            job_time,
            io_time_frac,
            nodes: run.world.alloc.spec.nodes,
            ranks_per_node: run.world.alloc.spec.ranks_per_node,
            n_ranks: run.world.alloc.total_ranks(),
            read_bytes,
            write_bytes,
            data_ops: data_sel.len() as u64,
            meta_ops: meta_sel.len() as u64,
            interface,
            access_pattern,
            req_sizes,
            req_bandwidth,
            read_timeline,
            write_timeline,
            files,
            phases,
            apps,
            app_deps,
            data_dist,
            trace: c,
        }
    }

    /// Number of distinct files used.
    pub fn n_files(&self) -> usize {
        self.files.len()
    }

    /// Files touched by more than one rank.
    pub fn shared_files(&self) -> usize {
        self.files.iter().filter(|f| f.is_shared()).count()
    }

    /// Files touched by exactly one rank (file-per-process).
    pub fn fpp_files(&self) -> usize {
        self.files.len() - self.shared_files()
    }

    /// Data-op fraction of interface-layer ops.
    pub fn data_frac(&self) -> f64 {
        let total = self.data_ops + self.meta_ops;
        if total == 0 {
            0.0
        } else {
            self.data_ops as f64 / total as f64
        }
    }

    /// Total bytes moved.
    pub fn io_bytes(&self) -> u64 {
        self.read_bytes + self.write_bytes
    }

    /// Sum of final file sizes (the dataset footprint, Table X).
    pub fn dataset_bytes(&self) -> u64 {
        self.files.iter().map(|f| f.size).sum()
    }

    /// Mean per-rank I/O time in seconds.
    pub fn io_time(&self) -> f64 {
        self.io_time_frac * self.job_time.as_secs_f64()
    }

    /// The request-size range covering the bulk of data ops (granularity
    /// attribute of Table VI). Returns (p10-ish bucket, p90-ish bucket).
    pub fn granularity(&self) -> (u64, u64) {
        let mut lo = u64::MAX;
        let mut hi = 0;
        let total = self.req_sizes.total().max(1);
        let mut seen = 0;
        for (bucket, count) in self.req_sizes.iter() {
            seen += count;
            if seen as f64 / total as f64 >= 0.05 && lo == u64::MAX {
                lo = bucket;
            }
            if seen as f64 / total as f64 <= 0.95 {
                hi = bucket.max(hi);
            }
        }
        if lo == u64::MAX {
            (0, 0)
        } else {
            (lo, hi.max(lo))
        }
    }
}

/// Layers counted as "the interface" for op statistics.
fn interface_layers(interface: &str) -> Vec<Layer> {
    match interface {
        "HDF5-MPI-IO" => vec![Layer::HighLevel, Layer::MpiIo],
        "STDIO" => vec![Layer::Stdio],
        _ => vec![Layer::Posix],
    }
}

/// Identify the workload's I/O interface from the layers present (Table I).
fn detect_interface(c: &ColumnarTrace) -> String {
    let mut has = HashSet::new();
    for &l in &c.layer {
        has.insert(l);
    }
    if has.contains(&Layer::MpiIo) && has.contains(&Layer::HighLevel) {
        "HDF5-MPI-IO".to_string()
    } else if has.contains(&Layer::Stdio) {
        "STDIO".to_string()
    } else {
        "POSIX".to_string()
    }
}

fn profile_files(c: &ColumnarTrace, io_sel: &[u32]) -> Vec<FileProfile> {
    let mut map: HashMap<u32, FileProfile> = HashMap::new();
    for &i in io_sel {
        let i = i as usize;
        let Some(fid) = c.file_id(i) else { continue };
        let p = map.entry(fid.0).or_insert_with(|| FileProfile {
            path: c.file_paths.get(fid.0 as usize).cloned().unwrap_or_default(),
            ..Default::default()
        });
        match c.op[i] {
            OpKind::Read => {
                p.readers.insert(c.rank[i]);
                p.read_bytes += c.bytes[i];
                p.data_ops += 1;
                p.size = p.size.max(c.offset[i] + c.bytes[i]);
            }
            OpKind::Write => {
                p.writers.insert(c.rank[i]);
                p.write_bytes += c.bytes[i];
                p.data_ops += 1;
                p.size = p.size.max(c.offset[i] + c.bytes[i]);
            }
            op if op.is_meta() => {
                p.meta_ops += 1;
                p.openers.insert(c.rank[i]);
            }
            _ => {}
        }
        p.time += Dur(c.end[i] - c.start[i]);
    }
    let mut v: Vec<FileProfile> = map.into_values().collect();
    v.sort_by(|a, b| b.read_bytes.cmp(&a.read_bytes).then(a.path.cmp(&b.path)));
    v
}

/// Phase detection: a gap larger than `job_time / 50` between consecutive
/// interface-layer I/O calls (aggregated across ranks) splits phases —
/// the paper's "threshold between two I/O calls".
fn detect_phases(c: &ColumnarTrace, io_sel: &[u32], job_time: Dur) -> Vec<PhaseInfo> {
    if io_sel.is_empty() {
        return Vec::new();
    }
    let threshold = Dur((job_time.as_nanos() / 50).max(1_000_000));
    let mut idx: Vec<u32> = io_sel.to_vec();
    idx.sort_by_key(|&i| c.start[i as usize]);
    let mut phases: Vec<PhaseInfo> = Vec::new();
    let mut cur: Option<(PhaseInfo, Histogram)> = None;
    let mut frontier = SimTime::ZERO;
    for &i in &idx {
        let i = i as usize;
        let start = SimTime(c.start[i]);
        let end = SimTime(c.end[i]);
        let begin_new = match &cur {
            None => true,
            Some(_) => start.since(frontier) > threshold,
        };
        if begin_new {
            if let Some((mut ph, hist)) = cur.take() {
                ph.dominant_xfer = dominant_bucket(&hist);
                phases.push(ph);
            }
            cur = Some((
                PhaseInfo {
                    start,
                    end,
                    bytes: 0,
                    data_ops: 0,
                    meta_ops: 0,
                    dominant_xfer: 0,
                },
                Histogram::new(),
            ));
            frontier = end;
        }
        let (ph, hist) = cur.as_mut().expect("phase open");
        ph.end = ph.end.max(end);
        frontier = frontier.max(end);
        if c.op[i].is_data() {
            ph.bytes += c.bytes[i];
            ph.data_ops += 1;
            if c.bytes[i] > 0 {
                hist.record(c.bytes[i]);
            }
        } else {
            ph.meta_ops += 1;
        }
    }
    if let Some((mut ph, hist)) = cur.take() {
        ph.dominant_xfer = dominant_bucket(&hist);
        phases.push(ph);
    }
    phases
}

fn dominant_bucket(h: &Histogram) -> u64 {
    h.iter().max_by_key(|&(_, count)| count).map(|(b, _)| b).unwrap_or(0)
}

fn profile_apps(c: &ColumnarTrace, run: &WorkloadRun) -> (Vec<AppProfile>, Vec<(String, String)>) {
    let mut map: HashMap<u16, AppProfile> = HashMap::new();
    let mut ranks: HashMap<u16, HashSet<u32>> = HashMap::new();
    // File producers/consumers at app granularity.
    let mut writers_of: HashMap<u32, HashSet<u16>> = HashMap::new();
    let mut readers_of: HashMap<u32, HashSet<u16>> = HashMap::new();
    for i in 0..c.len() {
        if !c.op[i].is_io() {
            continue;
        }
        let app = c.app[i];
        let p = map.entry(app).or_insert_with(|| AppProfile {
            name: run.world.tracer.app_name(recorder_sim::record::AppId(app)).to_string(),
            first: SimTime(u64::MAX),
            ..Default::default()
        });
        ranks.entry(app).or_default().insert(c.rank[i]);
        p.first = p.first.min(SimTime(c.start[i]));
        p.last = p.last.max(SimTime(c.end[i]));
        match c.op[i] {
            OpKind::Read => {
                p.read_bytes += c.bytes[i];
                p.data_ops += 1;
                if let Some(f) = c.file_id(i) {
                    readers_of.entry(f.0).or_default().insert(app);
                }
            }
            OpKind::Write => {
                p.write_bytes += c.bytes[i];
                p.data_ops += 1;
                if let Some(f) = c.file_id(i) {
                    writers_of.entry(f.0).or_default().insert(app);
                }
            }
            _ => p.meta_ops += 1,
        }
    }
    for (app, r) in ranks {
        if let Some(p) = map.get_mut(&app) {
            p.processes = r.len();
        }
    }
    // Producer → consumer edges through files.
    let mut deps = HashSet::new();
    for (file, writers) in &writers_of {
        if let Some(readers) = readers_of.get(file) {
            for &wr in writers {
                for &rd in readers {
                    if wr != rd {
                        let from = run.world.tracer.app_name(recorder_sim::record::AppId(wr));
                        let to = run.world.tracer.app_name(recorder_sim::record::AppId(rd));
                        deps.insert((from.to_string(), to.to_string()));
                    }
                }
            }
        }
    }
    let mut apps: Vec<AppProfile> = map.into_values().collect();
    apps.sort_by(|a, b| a.first.cmp(&b.first));
    let mut deps: Vec<_> = deps.into_iter().collect();
    deps.sort();
    (apps, deps)
}

/// Sequential if, per (rank, file), data-op offsets are non-decreasing for
/// nearly all consecutive pairs.
fn detect_access_pattern(c: &ColumnarTrace, data_sel: &[u32]) -> String {
    let mut last: HashMap<(u32, u32), u64> = HashMap::new();
    let mut seq = 0u64;
    let mut total = 0u64;
    let mut idx: Vec<u32> = data_sel.to_vec();
    idx.sort_by_key(|&i| c.start[i as usize]);
    for &i in &idx {
        let i = i as usize;
        let Some(f) = c.file_id(i) else { continue };
        let key = (c.rank[i], f.0);
        if let Some(&prev_end) = last.get(&key) {
            total += 1;
            if c.offset[i] >= prev_end {
                seq += 1;
            }
        }
        last.insert(key, c.offset[i] + c.bytes[i]);
    }
    if total == 0 || seq as f64 / total as f64 >= 0.85 {
        "Seq".to_string()
    } else {
        "Mixed".to_string()
    }
}

/// Sample the dataset's value bytes and classify the distribution. Samples
/// the most-read files, skipping the first KiB of format headers.
fn fit_data_distribution(run: &WorkloadRun, files: &[FileProfile]) -> DistributionFit {
    let mut summary = Summary::new();
    let store = run.world.storage.pfs().store();
    let mut sampled = 0;
    for f in files.iter().filter(|f| f.read_bytes > 0).take(4) {
        if let Some(key) = store.lookup(&f.path) {
            let bytes = store.read(key, 1024, 8192).unwrap_or_default();
            for &b in &bytes {
                summary.record(b as f64);
            }
            sampled += 1;
        }
    }
    if sampled == 0 {
        return DistributionFit::Unknown;
    }
    DistributionFit::classify(&summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use exemplar_workloads::{cm1, cosmoflow, hacc, jag, montage};
    use sim_core::units::KIB;

    #[test]
    fn hacc_analysis_matches_expected_shape() {
        let run = hacc::run(0.02, 1);
        let a = Analysis::from_run(&run);
        assert_eq!(a.interface, "POSIX");
        assert_eq!(a.shared_files(), 0, "HACC is strict FPP");
        assert_eq!(a.fpp_files(), run.world.alloc.total_ranks() as usize);
        assert_eq!(a.read_bytes, a.write_bytes);
        assert_eq!(a.access_pattern, "Seq");
        assert_eq!(a.data_dist, DistributionFit::Uniform);
        // Metadata around half of ops.
        assert!((0.3..=0.85).contains(&(1.0 - a.data_frac())));
    }

    #[test]
    fn cm1_analysis_finds_rank0_writer_and_phases() {
        // Multiple nodes so several leaders open the shared step files.
        let mut p = cm1::Cm1Params::scaled(0.02);
        p.nodes = 4;
        let run = cm1::run_with(p, 0.02, 42);
        let a = Analysis::from_run(&run);
        assert_eq!(a.interface, "POSIX");
        // Output files are shared (opened by leaders) but written by rank 0.
        let out_files: Vec<&FileProfile> = a
            .files
            .iter()
            .filter(|f| f.path.contains("/out/"))
            .collect();
        assert!(!out_files.is_empty());
        for f in &out_files {
            assert!(f.writers.iter().all(|&r| r == 0), "only rank 0 writes");
            assert!(f.is_shared(), "leaders open the step files");
        }
        // Multiple I/O phases: config read then per-step writes.
        assert!(a.phases.len() >= 2, "phases: {}", a.phases.len());
        assert_eq!(a.data_dist, DistributionFit::Normal);
    }

    #[test]
    fn cosmoflow_analysis_detects_hdf5_and_metadata_storm() {
        let run = cosmoflow::run(0.002, 5);
        let a = Analysis::from_run(&run);
        assert_eq!(a.interface, "HDF5-MPI-IO");
        assert!(a.shared_files() > 0);
        // The dataset itself is fully shared; only rank-0's checkpoint
        // files register as FPP through the POSIX fallback.
        assert!(
            a.files
                .iter()
                .filter(|f| f.path.contains("univ_"))
                .all(|f| f.is_shared()),
            "every dataset file is shared"
        );
        assert!(
            a.meta_ops > a.data_ops,
            "metadata ops {} must exceed data ops {}",
            a.meta_ops,
            a.data_ops
        );
        assert_eq!(a.data_dist, DistributionFit::Gamma);
    }

    #[test]
    fn jag_analysis_is_stdio_small_access() {
        let run = jag::run(0.02, 9);
        let a = Analysis::from_run(&run);
        assert_eq!(a.interface, "STDIO");
        let (_, hi) = a.granularity();
        assert!(hi <= 4 * KIB, "JAG granularity {hi} stays under 4 KiB");
        assert_eq!(a.data_dist, DistributionFit::Normal);
    }

    #[test]
    fn montage_analysis_sees_workflow_apps_and_deps() {
        let run = montage::run(0.02, 2);
        let a = Analysis::from_run(&run);
        assert_eq!(a.interface, "STDIO");
        assert!(a.apps.len() >= 5, "apps: {:?}", a.apps.iter().map(|x| &x.name).collect::<Vec<_>>());
        // mProject produces what mAddMPI consumes.
        assert!(
            a.app_deps
                .iter()
                .any(|(from, to)| from == "mProject" && to == "mAddMPI"),
            "deps: {:?}",
            a.app_deps
        );
        assert!(a.data_frac() > 0.5, "Montage is data-op dominated");
    }

    #[test]
    fn histograms_and_timelines_conserve_bytes() {
        let run = hacc::run(0.02, 1);
        let a = Analysis::from_run(&run);
        let hist_bytes: u128 = a.req_sizes.sum();
        assert_eq!(hist_bytes, (a.read_bytes + a.write_bytes) as u128);
        let tl_total = a.read_timeline.total() + a.write_timeline.total();
        let expect = (a.read_bytes + a.write_bytes) as f64;
        assert!((tl_total - expect).abs() < 1e-6 * expect);
    }

    #[test]
    fn phase_one_of_hacc_is_the_checkpoint() {
        let run = hacc::run(0.02, 1);
        let a = Analysis::from_run(&run);
        assert!(!a.phases.is_empty());
        let p0 = &a.phases[0];
        // First phase writes the checkpoint: data-dominated, large xfers.
        assert!(p0.bytes > 0);
        assert!(p0.data_ops > 0);
    }
}
