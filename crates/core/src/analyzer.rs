//! The Vani Analyzer: extracts the paper's workload attributes from a
//! captured run (§IV-C).
//!
//! Mirrors the paper's pipeline: the Recorder trace is converted to columns
//! (`recorder-sim::columnar`, the parquet step) and the attributes are
//! computed with group-by/filter kernels (the DASK step). `JobUtility`-style
//! system attributes come from the run's allocation and storage
//! configuration rather than the trace.
//!
//! # Fused single-pass scan
//!
//! Trace-derived attributes are computed by [`TraceProfile::fused`]: a
//! morsel-driven parallel traversal (built on [`vani_rt::par::par_fold_shards`])
//! whose per-morsel shard accumulator carries *everything at once* — byte and
//! op counters, per-rank aggregates, per-file profiles, per-app profiles,
//! producer/consumer file maps, request-size and bandwidth histograms, and
//! the interface-selection index lists that feed phase detection. Shards are
//! merged in morsel order, and every floating-point reduction downstream
//! happens in a key-sorted or index-sorted order, so the resulting
//! [`Analysis`] is **bit-identical across worker counts**.
//!
//! The pre-fusion implementation (one scan per statistic plus sequential
//! profiling loops) is retained as [`TraceProfile::multipass`]: it is the
//! correctness oracle for the fused scan (see the
//! `analyzer_fused_vs_multipass` integration suite) and the baseline the
//! `bench_analyzer` harness measures the speedup against.

use exemplar_workloads::harness::{WorkloadKind, WorkloadRun};
use recorder_sim::record::{Layer, OpKind};
use recorder_sim::ColumnarTrace;
use sim_core::stats::{DistributionFit, Summary};

use sim_core::{Dur, Histogram, SimTime, TimeSeries};
use std::collections::{HashMap, HashSet};
use vani_rt::par;

/// Per-file profile: who touches it and how much.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FileProfile {
    /// Interned path.
    pub path: String,
    /// Ranks that read it.
    pub readers: HashSet<u32>,
    /// Ranks that write it.
    pub writers: HashSet<u32>,
    /// Ranks that performed metadata ops on it (open/close/stat).
    pub openers: HashSet<u32>,
    /// Bytes read.
    pub read_bytes: u64,
    /// Bytes written.
    pub write_bytes: u64,
    /// Data ops.
    pub data_ops: u64,
    /// Metadata ops.
    pub meta_ops: u64,
    /// Total time spent in ops on this file.
    pub time: Dur,
    /// Final size (from the trace's high-water mark).
    pub size: u64,
}

impl FileProfile {
    /// Every rank that touches the file (data or metadata access — the
    /// paper classifies CM1's step files as shared because many leaders
    /// open them even though only rank 0 writes).
    pub fn touchers(&self) -> usize {
        self.readers
            .union(&self.writers)
            .chain(self.openers.difference(&self.readers))
            .collect::<HashSet<_>>()
            .len()
    }

    /// Shared = touched by more than one rank (the paper's classification).
    pub fn is_shared(&self) -> bool {
        self.touchers() > 1
    }

    /// Fold one interface-selection record into this profile.
    fn absorb(&mut self, c: &ColumnarTrace, i: usize) {
        match c.op[i] {
            OpKind::Read => {
                self.readers.insert(c.rank[i]);
                self.read_bytes += c.bytes[i];
                self.data_ops += 1;
                self.size = self.size.max(c.offset[i] + c.bytes[i]);
            }
            OpKind::Write => {
                self.writers.insert(c.rank[i]);
                self.write_bytes += c.bytes[i];
                self.data_ops += 1;
                self.size = self.size.max(c.offset[i] + c.bytes[i]);
            }
            op if op.is_meta() => {
                self.meta_ops += 1;
                self.openers.insert(c.rank[i]);
            }
            _ => {}
        }
        self.time += Dur(c.end[i] - c.start[i]);
    }
}

/// One detected I/O phase (Table V).
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseInfo {
    /// Phase start.
    pub start: SimTime,
    /// Phase end.
    pub end: SimTime,
    /// Bytes moved in the phase.
    pub bytes: u64,
    /// Data ops in the phase.
    pub data_ops: u64,
    /// Metadata ops in the phase.
    pub meta_ops: u64,
    /// Dominant transfer size in the phase.
    pub dominant_xfer: u64,
}

impl PhaseInfo {
    /// Phase duration.
    pub fn runtime(&self) -> Dur {
        self.end.since(self.start)
    }
}

/// Per-application (workflow step) profile.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AppProfile {
    /// Kernel name.
    pub name: String,
    /// Distinct ranks that executed it.
    pub processes: usize,
    /// Bytes read / written.
    pub read_bytes: u64,
    /// Bytes written.
    pub write_bytes: u64,
    /// Data / metadata ops.
    pub data_ops: u64,
    /// Metadata ops.
    pub meta_ops: u64,
    /// Wall span of its records.
    pub first: SimTime,
    /// Last record end.
    pub last: SimTime,
}

/// All workload attributes derivable from the columnar trace alone (no
/// allocation or storage state needed). [`Analysis`] is this plus the
/// run-level attributes; the bench harness profiles bare synthetic traces
/// through this type directly.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceProfile {
    /// Mean per-rank time spent inside I/O calls, as a fraction of runtime.
    pub io_time_frac: f64,
    /// Bytes read at the interface layer.
    pub read_bytes: u64,
    /// Bytes written at the interface layer.
    pub write_bytes: u64,
    /// Interface-layer data op count.
    pub data_ops: u64,
    /// Interface-layer metadata op count.
    pub meta_ops: u64,
    /// Detected interface ("POSIX", "STDIO", "HDF5-MPI-IO").
    pub interface: String,
    /// "Seq" / "Mixed" access pattern.
    pub access_pattern: String,
    /// Request-size histogram (Figures 1a–6a, left panel).
    pub req_sizes: Histogram,
    /// Per-request bandwidth histogram, bytes/s buckets (right panel).
    pub req_bandwidth: Histogram,
    /// Read-bytes timeline (Figures 1c–6c).
    pub read_timeline: TimeSeries,
    /// Write-bytes timeline.
    pub write_timeline: TimeSeries,
    /// Per-file profiles.
    pub files: Vec<FileProfile>,
    /// Detected I/O phases.
    pub phases: Vec<PhaseInfo>,
    /// Per-application profiles (workflows have several).
    pub apps: Vec<AppProfile>,
    /// App-level data dependencies (producer → consumer).
    pub app_deps: Vec<(String, String)>,
    /// Failed attempts absorbed or surfaced by the resilience middleware
    /// (`Fault` records; counted over every layer, outside the interface
    /// selection — fault records are neither data nor metadata ops).
    pub fault_events: u64,
    /// Backoff waits before re-submission (`Retry` records).
    pub retry_events: u64,
    /// Payload bytes re-submitted by retries (feeds retry amplification).
    pub retried_bytes: u64,
    /// Wall time inside fault detection and backoff waits — the trace's
    /// "time lost to faults".
    pub fault_time: Dur,
    /// Durable checkpoints written (`Checkpoint` records).
    pub ckpt_events: u64,
    /// Wall time inside checkpoint write sequences (`Checkpoint` spans).
    pub ckpt_time: Dur,
    /// Job restarts after fatal crashes (`RestartEpoch` records).
    pub restart_events: u64,
    /// Work thrown away by crashes: last durable checkpoint → instant of
    /// death (`Crash` spans).
    pub crash_lost_time: Dur,
    /// Scheduler requeue + relaunch latency (`RestartEpoch` spans).
    pub recovery_time: Dur,
}

/// The complete analysis of one workload run.
#[derive(Debug, Clone, PartialEq)]
pub struct Analysis {
    /// Which workload.
    pub kind: WorkloadKind,
    /// Scale it ran at.
    pub scale: f64,
    /// Job runtime (engine makespan).
    pub job_time: Dur,
    /// Mean per-rank time spent inside I/O calls, as a fraction of runtime.
    pub io_time_frac: f64,
    /// Nodes / ranks-per-node / total ranks.
    pub nodes: u32,
    /// Ranks per node.
    pub ranks_per_node: u32,
    /// Total ranks.
    pub n_ranks: u32,
    /// Bytes read at the interface layer.
    pub read_bytes: u64,
    /// Bytes written at the interface layer.
    pub write_bytes: u64,
    /// Interface-layer data / metadata op counts.
    pub data_ops: u64,
    /// Metadata ops at the interface layer.
    pub meta_ops: u64,
    /// Detected interface ("POSIX", "STDIO", "HDF5-MPI-IO").
    pub interface: String,
    /// "Sequential" / "Mixed" access pattern.
    pub access_pattern: String,
    /// Request-size histogram (Figures 1a–6a, left panel).
    pub req_sizes: Histogram,
    /// Per-request bandwidth histogram, bytes/s buckets (right panel).
    pub req_bandwidth: Histogram,
    /// Read-bytes timeline (Figures 1c–6c).
    pub read_timeline: TimeSeries,
    /// Write-bytes timeline.
    pub write_timeline: TimeSeries,
    /// Per-file profiles.
    pub files: Vec<FileProfile>,
    /// Detected I/O phases.
    pub phases: Vec<PhaseInfo>,
    /// Per-application profiles (workflows have several).
    pub apps: Vec<AppProfile>,
    /// App-level data dependencies (producer → consumer).
    pub app_deps: Vec<(String, String)>,
    /// Failed attempts absorbed or surfaced by the resilience middleware.
    pub fault_events: u64,
    /// Backoff waits before re-submission.
    pub retry_events: u64,
    /// Payload bytes re-submitted by retries.
    pub retried_bytes: u64,
    /// Wall time inside fault detection and backoff waits.
    pub fault_time: Dur,
    /// Durable checkpoints written.
    pub ckpt_events: u64,
    /// Wall time inside checkpoint write sequences.
    pub ckpt_time: Dur,
    /// Job restarts after fatal crashes.
    pub restart_events: u64,
    /// Work thrown away by crashes (re-run after restarting).
    pub crash_lost_time: Dur,
    /// Scheduler requeue + relaunch latency across all restarts.
    pub recovery_time: Dur,
    /// Bytes each *failed* NSD server's stripes rerouted onto survivors,
    /// indexed by the home server (from the PFS service model; all zeros
    /// when no outage was injected).
    pub rerouted_by_server: Vec<u64>,
    /// Dataset value-distribution fit (Table VI "Data dist").
    pub data_dist: DistributionFit,
    /// The columnar trace, retained for figure rendering.
    pub trace: ColumnarTrace,
}

impl Analysis {
    /// Analyze a completed run with the fused single-pass scan.
    pub fn from_run(run: &WorkloadRun) -> Analysis {
        let c = run.columnar();
        let profile = TraceProfile::fused(&c, run.runtime());
        Self::assemble(run, c, profile)
    }

    /// Analyze a completed run with the legacy one-scan-per-statistic
    /// pipeline. Retained as the oracle the fused scan is cross-checked
    /// against and as the benchmark baseline; results are bit-identical to
    /// [`Self::from_run`].
    pub fn from_run_multipass(run: &WorkloadRun) -> Analysis {
        let c = run.columnar();
        let profile = TraceProfile::multipass(&c, run.runtime());
        Self::assemble(run, c, profile)
    }

    /// Combine a trace profile with the run-level attributes.
    pub(crate) fn assemble(run: &WorkloadRun, c: ColumnarTrace, p: TraceProfile) -> Analysis {
        let data_dist = fit_data_distribution(run, &p.files);
        Analysis {
            kind: run.kind,
            scale: run.scale,
            job_time: run.runtime(),
            io_time_frac: p.io_time_frac,
            nodes: run.world.alloc.spec.nodes,
            ranks_per_node: run.world.alloc.spec.ranks_per_node,
            n_ranks: run.world.alloc.total_ranks(),
            read_bytes: p.read_bytes,
            write_bytes: p.write_bytes,
            data_ops: p.data_ops,
            meta_ops: p.meta_ops,
            interface: p.interface,
            access_pattern: p.access_pattern,
            req_sizes: p.req_sizes,
            req_bandwidth: p.req_bandwidth,
            read_timeline: p.read_timeline,
            write_timeline: p.write_timeline,
            files: p.files,
            phases: p.phases,
            apps: p.apps,
            app_deps: p.app_deps,
            fault_events: p.fault_events,
            retry_events: p.retry_events,
            retried_bytes: p.retried_bytes,
            fault_time: p.fault_time,
            ckpt_events: p.ckpt_events,
            ckpt_time: p.ckpt_time,
            restart_events: p.restart_events,
            crash_lost_time: p.crash_lost_time,
            recovery_time: p.recovery_time,
            rerouted_by_server: run.world.storage.pfs().rerouted_by_server().to_vec(),
            data_dist,
            trace: c,
        }
    }

    /// Number of distinct files used.
    pub fn n_files(&self) -> usize {
        self.files.len()
    }

    /// Files touched by more than one rank.
    pub fn shared_files(&self) -> usize {
        self.files.iter().filter(|f| f.is_shared()).count()
    }

    /// Files touched by exactly one rank (file-per-process).
    pub fn fpp_files(&self) -> usize {
        self.files.len() - self.shared_files()
    }

    /// Data-op fraction of interface-layer ops.
    pub fn data_frac(&self) -> f64 {
        let total = self.data_ops + self.meta_ops;
        if total == 0 {
            0.0
        } else {
            self.data_ops as f64 / total as f64
        }
    }

    /// Total bytes moved.
    pub fn io_bytes(&self) -> u64 {
        self.read_bytes + self.write_bytes
    }

    /// Sum of final file sizes (the dataset footprint, Table X).
    pub fn dataset_bytes(&self) -> u64 {
        self.files.iter().map(|f| f.size).sum()
    }

    /// Mean per-rank I/O time in seconds.
    pub fn io_time(&self) -> f64 {
        self.io_time_frac * self.job_time.as_secs_f64()
    }

    /// Faults per interface-layer I/O op (Table VI-style "Error rate").
    pub fn error_rate(&self) -> f64 {
        let ops = self.data_ops + self.meta_ops;
        if ops == 0 {
            0.0
        } else {
            self.fault_events as f64 / ops as f64
        }
    }

    /// Retried bytes over logical bytes: how much extra payload the
    /// middleware re-moved to land the logical I/O.
    pub fn retry_amplification(&self) -> f64 {
        let logical = self.io_bytes();
        if logical == 0 {
            0.0
        } else {
            self.retried_bytes as f64 / logical as f64
        }
    }

    /// Seconds of simulated wall time lost inside fault detection and
    /// backoff waits.
    pub fn time_lost_to_faults(&self) -> f64 {
        self.fault_time.as_secs_f64()
    }

    /// Times the job restarted after a fatal crash.
    pub fn restart_count(&self) -> u64 {
        self.restart_events
    }

    /// Seconds of completed work thrown away by crashes (everything since
    /// the last durable checkpoint, re-run after restarting).
    pub fn time_lost_to_crashes(&self) -> f64 {
        self.crash_lost_time.as_secs_f64()
    }

    /// Seconds spent writing durable checkpoints — the insurance premium
    /// the checkpoint-interval sweep trades against work lost.
    pub fn checkpoint_overhead(&self) -> f64 {
        self.ckpt_time.as_secs_f64()
    }

    /// Seconds between crashes and the relaunched job's first event
    /// (scheduler requeue + relaunch), across all restarts.
    pub fn recovery_seconds(&self) -> f64 {
        self.recovery_time.as_secs_f64()
    }

    /// The request-size range covering the bulk of data ops (granularity
    /// attribute of Table VI). Returns (p10-ish bucket, p90-ish bucket).
    pub fn granularity(&self) -> (u64, u64) {
        let mut lo = u64::MAX;
        let mut hi = 0;
        let total = self.req_sizes.total().max(1);
        let mut seen = 0;
        for (bucket, count) in self.req_sizes.iter() {
            seen += count;
            if seen as f64 / total as f64 >= 0.05 && lo == u64::MAX {
                lo = bucket;
            }
            if seen as f64 / total as f64 <= 0.95 {
                hi = bucket.max(hi);
            }
        }
        if lo == u64::MAX {
            (0, 0)
        } else {
            (lo, hi.max(lo))
        }
    }
}

/// Dense index for a [`Layer`] (array-backed lookup tables in the scans).
pub(crate) fn layer_idx(l: Layer) -> usize {
    match l {
        Layer::App => 0,
        Layer::HighLevel => 1,
        Layer::MpiIo => 2,
        Layer::Stdio => 3,
        Layer::Posix => 4,
        Layer::Middleware => 5,
    }
}

/// Layers counted as "the interface" for op statistics.
pub(crate) fn interface_layers(interface: &str) -> Vec<Layer> {
    match interface {
        "HDF5-MPI-IO" => vec![Layer::HighLevel, Layer::MpiIo],
        "STDIO" => vec![Layer::Stdio],
        _ => vec![Layer::Posix],
    }
}

/// Identify the workload's I/O interface from the layers present (Table I).
fn detect_interface(c: &ColumnarTrace) -> String {
    let mut present = [false; 6];
    for &l in &c.layer {
        present[layer_idx(l)] = true;
    }
    interface_from_presence(&present)
}

/// [`detect_interface`] from a precomputed layer-presence table.
pub(crate) fn interface_from_presence(present: &[bool; 6]) -> String {
    if present[layer_idx(Layer::MpiIo)] && present[layer_idx(Layer::HighLevel)] {
        "HDF5-MPI-IO".to_string()
    } else if present[layer_idx(Layer::Stdio)] {
        "STDIO".to_string()
    } else {
        "POSIX".to_string()
    }
}

/// Workflow-step name for an app id, from the trace's interned name table.
fn app_name(c: &ColumnarTrace, app: u16) -> String {
    app_name_from(&c.app_names, app)
}

/// [`app_name`] from a bare interned-name table (the streaming path holds a
/// [`recorder_sim::ChunkedTrace`], not a `ColumnarTrace`).
pub(crate) fn app_name_from(names: &[String], app: u16) -> String {
    names
        .get(app as usize)
        .cloned()
        .unwrap_or_else(|| format!("app{app}"))
}

/// Mean-per-rank I/O-time fraction from per-rank I/O times visited in
/// ascending rank order. Both analyzer paths feed this the same sorted
/// sequence, so the non-associative f64 accumulation is byte-stable run to
/// run (summing in HashMap iteration order is not).
fn io_frac_sorted(times: impl Iterator<Item = Dur>, job_time: Dur) -> f64 {
    let mut sum = 0.0f64;
    let mut n = 0u64;
    for t in times {
        sum += t.as_secs_f64();
        n += 1;
    }
    if n == 0 || job_time == Dur::ZERO {
        return 0.0;
    }
    ((sum / n as f64) / job_time.as_secs_f64()).min(1.0)
}

/// [`io_frac_sorted`] over a per-rank aggregate map (the multipass path).
fn io_frac_from_rank_aggs(
    by_rank: &HashMap<u32, recorder_sim::columnar::GroupAgg>,
    job_time: Dur,
) -> f64 {
    let mut ranks: Vec<u32> = by_rank.keys().copied().collect();
    ranks.sort_unstable();
    io_frac_sorted(ranks.iter().map(|r| by_rank[r].time), job_time)
}

/// Timeline bin width: 128 bins over the run. Every analyzer path (fused,
/// multipass, streaming) must derive its bin from this so the series stay
/// comparable bit-for-bit.
pub(crate) fn timeline_bin(job_time: Dur) -> Dur {
    Dur((job_time.as_nanos() / 128).max(1))
}

/// Build the read/write timelines (128 bins over the run) from the
/// interface-layer data-op selection. Shared by the fused and multipass
/// paths — f64 bin accumulation is non-associative, so both must add
/// record contributions in the same (index) order to stay bit-identical.
fn build_timelines(c: &ColumnarTrace, data_sel: &[u32], job_time: Dur) -> (TimeSeries, TimeSeries) {
    let bin = timeline_bin(job_time);
    let mut read_timeline = TimeSeries::new(bin);
    let mut write_timeline = TimeSeries::new(bin);
    for &i in data_sel {
        let i = i as usize;
        let ts = match c.op[i] {
            OpKind::Read => &mut read_timeline,
            OpKind::Write => &mut write_timeline,
            _ => continue,
        };
        ts.add(SimTime(c.start[i]), SimTime(c.end[i]), c.bytes[i] as f64);
    }
    (read_timeline, write_timeline)
}

/// Sort file profiles for emission: most-read first, path as the tiebreak
/// (paths are unique per file id, so the order is total and byte-stable).
pub(crate) fn sort_files(mut v: Vec<FileProfile>) -> Vec<FileProfile> {
    v.sort_by(|a, b| b.read_bytes.cmp(&a.read_bytes).then(a.path.cmp(&b.path)));
    v
}

/// Sort app profiles for emission by (first record, name) — the name
/// tiebreak keeps the order byte-stable when two workflow steps start at
/// the same instant (HashMap drain order is not deterministic).
pub(crate) fn sort_apps(mut v: Vec<AppProfile>) -> Vec<AppProfile> {
    v.sort_by(|a, b| a.first.cmp(&b.first).then_with(|| a.name.cmp(&b.name)));
    v
}

/// Producer → consumer app edges through files, sorted for emission.
fn deps_from_file_maps(
    c: &ColumnarTrace,
    writers_of: &HashMap<u32, HashSet<u16>>,
    readers_of: &HashMap<u32, HashSet<u16>>,
) -> Vec<(String, String)> {
    let mut deps = HashSet::new();
    for (file, writers) in writers_of {
        if let Some(readers) = readers_of.get(file) {
            for &wr in writers {
                for &rd in readers {
                    if wr != rd {
                        deps.insert((app_name(c, wr), app_name(c, rd)));
                    }
                }
            }
        }
    }
    let mut deps: Vec<_> = deps.into_iter().collect();
    deps.sort();
    deps
}

// ---------------------------------------------------------------------------
// Fused single-pass scan
// ---------------------------------------------------------------------------

/// A lazily-allocated bitset over a small dense id space (ranks, apps,
/// file ids). The fused scan uses these instead of `HashSet`s in its inner
/// loop: an insert is one bounds check and an OR, not a SipHash probe.
#[derive(Debug, Default, Clone)]
struct IdSet {
    words: Vec<u64>,
}

impl IdSet {
    #[inline]
    fn insert(&mut self, id: usize) {
        let w = id / 64;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        self.words[w] |= 1 << (id % 64);
    }

    fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    fn merge(&mut self, other: &IdSet) {
        if self.words.len() < other.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Set members in ascending order.
    fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            std::iter::successors((w != 0).then_some(w), |&rest| {
                let rest = rest & (rest - 1);
                (rest != 0).then_some(rest)
            })
            .map(move |bits| wi * 64 + bits.trailing_zeros() as usize)
        })
    }

    fn to_hashset_u32(&self) -> HashSet<u32> {
        self.iter().map(|i| i as u32).collect()
    }
}

/// Dense per-file accumulator inside the fused shard (a [`FileProfile`]
/// with the rank/app sets as bitsets, plus the producer/consumer app sets
/// that drive workflow dependency edges).
#[derive(Debug, Default, Clone)]
struct FileAcc {
    /// Appears in the interface selection (emitted as a [`FileProfile`]).
    profiled: bool,
    read_bytes: u64,
    write_bytes: u64,
    data_ops: u64,
    meta_ops: u64,
    time: Dur,
    size: u64,
    readers: IdSet,
    writers: IdSet,
    openers: IdSet,
    /// Apps that read / wrote this file at *any* layer (dependency edges).
    reader_apps: IdSet,
    writer_apps: IdSet,
}

impl FileAcc {
    fn merge(&mut self, other: &FileAcc) {
        self.profiled |= other.profiled;
        self.read_bytes += other.read_bytes;
        self.write_bytes += other.write_bytes;
        self.data_ops += other.data_ops;
        self.meta_ops += other.meta_ops;
        self.time += other.time;
        self.size = self.size.max(other.size);
        self.readers.merge(&other.readers);
        self.writers.merge(&other.writers);
        self.openers.merge(&other.openers);
        self.reader_apps.merge(&other.reader_apps);
        self.writer_apps.merge(&other.writer_apps);
    }
}

/// Dense per-app accumulator (an [`AppProfile`] with the rank set as a
/// bitset). `first` starts at `u64::MAX` exactly like the multipass path.
#[derive(Debug, Clone)]
struct AppAcc {
    seen: bool,
    read_bytes: u64,
    write_bytes: u64,
    data_ops: u64,
    meta_ops: u64,
    first: u64,
    last: u64,
    ranks: IdSet,
}

impl Default for AppAcc {
    fn default() -> Self {
        AppAcc {
            seen: false,
            read_bytes: 0,
            write_bytes: 0,
            data_ops: 0,
            meta_ops: 0,
            first: u64::MAX,
            last: 0,
            ranks: IdSet::default(),
        }
    }
}

impl AppAcc {
    fn merge(&mut self, other: &AppAcc) {
        self.seen |= other.seen;
        self.read_bytes += other.read_bytes;
        self.write_bytes += other.write_bytes;
        self.data_ops += other.data_ops;
        self.meta_ops += other.meta_ops;
        self.first = self.first.min(other.first);
        self.last = self.last.max(other.last);
        self.ranks.merge(&other.ranks);
    }
}

/// Id-space dimensions for the dense shard accumulators, from the prescan
/// (fused path) or the merged chunk metadata (streaming path).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Dims {
    pub(crate) n_files: usize,
    pub(crate) n_apps: usize,
    pub(crate) n_ranks: usize,
}

/// Per-file accumulators with slot indirection: a flat `file id → slot`
/// vector plus a compact list of accumulators in first-touch order. Lookup
/// stays O(1), but per-shard setup zeroes 4 bytes per file id instead of a
/// whole [`FileAcc`], and merging visits only the files a shard touched —
/// traces with many files and short morsels (Pegasus-style workflows)
/// would otherwise pay O(shards × files) in allocation and merge.
#[derive(Debug)]
struct FileTable {
    /// File id → index into `ids`/`accs`; `u32::MAX` = untouched.
    slot: Vec<u32>,
    /// Touched file ids in first-touch order.
    ids: Vec<u32>,
    accs: Vec<FileAcc>,
}

impl FileTable {
    fn new(n_files: usize) -> FileTable {
        FileTable {
            slot: vec![u32::MAX; n_files],
            ids: Vec::new(),
            accs: Vec::new(),
        }
    }

    #[inline]
    fn get(&mut self, fid: usize) -> &mut FileAcc {
        let s = self.slot[fid];
        if s != u32::MAX {
            return &mut self.accs[s as usize];
        }
        self.slot[fid] = self.accs.len() as u32;
        self.ids.push(fid as u32);
        self.accs.push(FileAcc::default());
        self.accs.last_mut().expect("just pushed")
    }

    fn merge(&mut self, other: &FileTable) {
        for (k, &fid) in other.ids.iter().enumerate() {
            self.get(fid as usize).merge(&other.accs[k]);
        }
    }

    /// Touched `(file id, accumulator)` pairs in first-touch order.
    fn iter(&self) -> impl Iterator<Item = (u32, &FileAcc)> {
        self.ids.iter().copied().zip(&self.accs)
    }
}

/// The fused scan's shard accumulator: one morsel's worth of every
/// statistic the analyzer needs, in dense array-indexed form. Merged in
/// morsel order.
///
/// The streaming path reuses it per chunk: the index lists are chunk-local
/// (consumed by the online detectors, then cleared before the shard merges
/// into the run-global accumulator).
#[derive(Debug)]
pub(crate) struct FusedShard {
    /// Interface-selection indices, ascending (morsel concat keeps order).
    pub(crate) io_idx: Vec<u32>,
    /// Data-op subset of `io_idx`, ascending.
    pub(crate) data_idx: Vec<u32>,
    read_bytes: u64,
    write_bytes: u64,
    meta_ops: u64,
    fault_events: u64,
    retry_events: u64,
    retried_bytes: u64,
    fault_time: Dur,
    ckpt_events: u64,
    ckpt_time: Dur,
    restart_events: u64,
    crash_lost_time: Dur,
    recovery_time: Dur,
    /// Indexed by rank.
    rank_aggs: Vec<recorder_sim::columnar::GroupAgg>,
    req_sizes: Histogram,
    req_bandwidth: Histogram,
    /// Slot-indirect per-file accumulators.
    files: FileTable,
    /// Indexed by app id.
    apps: Vec<AppAcc>,
}

impl FusedShard {
    pub(crate) fn new(dims: Dims) -> FusedShard {
        FusedShard {
            io_idx: Vec::new(),
            data_idx: Vec::new(),
            read_bytes: 0,
            write_bytes: 0,
            meta_ops: 0,
            fault_events: 0,
            retry_events: 0,
            retried_bytes: 0,
            fault_time: Dur::ZERO,
            ckpt_events: 0,
            ckpt_time: Dur::ZERO,
            restart_events: 0,
            crash_lost_time: Dur::ZERO,
            recovery_time: Dur::ZERO,
            rank_aggs: vec![Default::default(); dims.n_ranks],
            req_sizes: Histogram::new(),
            req_bandwidth: Histogram::new(),
            files: FileTable::new(dims.n_files),
            apps: vec![AppAcc::default(); dims.n_apps],
        }
    }

    pub(crate) fn merge(&mut self, other: FusedShard) {
        self.io_idx.extend(other.io_idx);
        self.data_idx.extend(other.data_idx);
        self.read_bytes += other.read_bytes;
        self.write_bytes += other.write_bytes;
        self.meta_ops += other.meta_ops;
        self.fault_events += other.fault_events;
        self.retry_events += other.retry_events;
        self.retried_bytes += other.retried_bytes;
        self.fault_time += other.fault_time;
        self.ckpt_events += other.ckpt_events;
        self.ckpt_time += other.ckpt_time;
        self.restart_events += other.restart_events;
        self.crash_lost_time += other.crash_lost_time;
        self.recovery_time += other.recovery_time;
        for (a, b) in self.rank_aggs.iter_mut().zip(&other.rank_aggs) {
            a.ops += b.ops;
            a.bytes += b.bytes;
            a.time += b.time;
        }
        self.req_sizes.merge(&other.req_sizes);
        self.req_bandwidth.merge(&other.req_bandwidth);
        self.files.merge(&other.files);
        for (a, b) in self.apps.iter_mut().zip(&other.apps) {
            if b.seen {
                a.merge(b);
            }
        }
    }
}

/// Interface-selection context for the fused per-record fold: which layers
/// are "the interface", which files those layers touch, and whether POSIX
/// ops on other files fall through into the selection.
pub(crate) struct SelCtx<'a> {
    pub(crate) iface_mask: [bool; 6],
    pub(crate) iface_file: &'a [bool],
    pub(crate) posix_fallback: bool,
}

impl SelCtx<'_> {
    /// The interface-selection predicate (shared verbatim by the fused and
    /// streaming paths so the two selections can never diverge).
    #[inline]
    pub(crate) fn in_sel(&self, c: &ColumnarTrace, i: usize) -> bool {
        self.iface_mask[layer_idx(c.layer[i])]
            || (self.posix_fallback
                && c.layer[i] == Layer::Posix
                && c.file_id(i).is_some_and(|f| !self.iface_file[f.0 as usize]))
    }
}

/// Fold record `i` of `c` into a [`FusedShard`]. This is the fused scan's
/// entire inner loop, extracted so the streaming path folds *decoded chunk*
/// records through byte-for-byte the same statistics code. Index pushes use
/// `i` relative to `c` — chunk-local when `c` is a decoded chunk buffer.
#[inline]
pub(crate) fn fold_fused_record(acc: &mut FusedShard, c: &ColumnarTrace, i: usize, ctx: &SelCtx) {
    let op = c.op[i];
    // Resilience records are neither data nor metadata ops; tally them
    // before the is_io() skip.
    match op {
        OpKind::Fault => {
            acc.fault_events += 1;
            acc.fault_time += Dur(c.end[i] - c.start[i]);
            return;
        }
        OpKind::Retry => {
            acc.retry_events += 1;
            acc.retried_bytes += c.bytes[i];
            acc.fault_time += Dur(c.end[i] - c.start[i]);
            return;
        }
        OpKind::Checkpoint => {
            acc.ckpt_events += 1;
            acc.ckpt_time += Dur(c.end[i] - c.start[i]);
            return;
        }
        OpKind::Crash => {
            acc.crash_lost_time += Dur(c.end[i] - c.start[i]);
            return;
        }
        OpKind::RestartEpoch => {
            acc.restart_events += 1;
            acc.recovery_time += Dur(c.end[i] - c.start[i]);
            return;
        }
        _ => {}
    }
    if !op.is_io() {
        return;
    }
    let rank = c.rank[i] as usize;
    let file = c.file_id(i).map(|f| f.0 as usize);
    let dur = Dur(c.end[i] - c.start[i]);

    // App profiles cover I/O at *every* layer.
    let app = &mut acc.apps[c.app[i] as usize];
    app.seen = true;
    app.ranks.insert(rank);
    app.first = app.first.min(c.start[i]);
    app.last = app.last.max(c.end[i]);
    match op {
        OpKind::Read => {
            app.read_bytes += c.bytes[i];
            app.data_ops += 1;
            if let Some(f) = file {
                acc.files.get(f).reader_apps.insert(c.app[i] as usize);
            }
        }
        OpKind::Write => {
            app.write_bytes += c.bytes[i];
            app.data_ops += 1;
            if let Some(f) = file {
                acc.files.get(f).writer_apps.insert(c.app[i] as usize);
            }
        }
        _ => app.meta_ops += 1,
    }

    // Everything else covers the interface selection only.
    if !ctx.in_sel(c, i) {
        return;
    }
    acc.io_idx.push(i as u32);

    let agg = &mut acc.rank_aggs[rank];
    agg.ops += 1;
    agg.bytes += c.bytes[i];
    agg.time += dur;

    if let Some(f) = file {
        let fa = acc.files.get(f);
        fa.profiled = true;
        fa.time += dur;
        match op {
            OpKind::Read => {
                fa.readers.insert(rank);
                fa.read_bytes += c.bytes[i];
                fa.data_ops += 1;
                fa.size = fa.size.max(c.offset[i] + c.bytes[i]);
            }
            OpKind::Write => {
                fa.writers.insert(rank);
                fa.write_bytes += c.bytes[i];
                fa.data_ops += 1;
                fa.size = fa.size.max(c.offset[i] + c.bytes[i]);
            }
            _ => {
                fa.meta_ops += 1;
                fa.openers.insert(rank);
            }
        }
    }

    if op.is_data() {
        acc.data_idx.push(i as u32);
        match op {
            OpKind::Read => acc.read_bytes += c.bytes[i],
            OpKind::Write => acc.write_bytes += c.bytes[i],
            _ => {}
        }
        if c.bytes[i] > 0 {
            acc.req_sizes.record(c.bytes[i]);
            let bw = dur.bandwidth(c.bytes[i]);
            if bw.is_finite() {
                acc.req_bandwidth.record(bw as u64);
            }
        }
    } else {
        acc.meta_ops += 1;
    }
}

/// Emit a [`TraceProfile`] from the run-global fused accumulator plus the
/// detector outputs. Shared by the fused and streaming paths: per-file and
/// per-app emission order, the dependency-edge set, and the per-rank f64
/// reduction all live here once, so the two paths cannot drift apart.
#[allow(clippy::too_many_arguments)]
pub(crate) fn emit_profile(
    fused: FusedShard,
    file_paths: &[String],
    app_names: &[String],
    job_time: Dur,
    interface: String,
    access_pattern: String,
    phases: Vec<PhaseInfo>,
    read_timeline: TimeSeries,
    write_timeline: TimeSeries,
    data_ops: u64,
) -> TraceProfile {
    let io_time_frac = io_frac_sorted(
        fused.rank_aggs.iter().filter(|g| g.ops > 0).map(|g| g.time),
        job_time,
    );

    let files = sort_files(
        fused
            .files
            .iter()
            .filter(|(_, fa)| fa.profiled)
            .map(|(fid, fa)| FileProfile {
                path: file_paths.get(fid as usize).cloned().unwrap_or_default(),
                readers: fa.readers.to_hashset_u32(),
                writers: fa.writers.to_hashset_u32(),
                openers: fa.openers.to_hashset_u32(),
                read_bytes: fa.read_bytes,
                write_bytes: fa.write_bytes,
                data_ops: fa.data_ops,
                meta_ops: fa.meta_ops,
                time: fa.time,
                size: fa.size,
            })
            .collect(),
    );

    let apps = sort_apps(
        fused
            .apps
            .iter()
            .enumerate()
            .filter(|(_, a)| a.seen)
            .map(|(id, a)| AppProfile {
                name: app_name_from(app_names, id as u16),
                processes: a.ranks.count(),
                read_bytes: a.read_bytes,
                write_bytes: a.write_bytes,
                data_ops: a.data_ops,
                meta_ops: a.meta_ops,
                first: SimTime(a.first),
                last: SimTime(a.last),
            })
            .collect(),
    );

    // Producer → consumer edges through each file's app bitsets.
    let mut dep_set = HashSet::new();
    for (_, fa) in fused.files.iter() {
        if fa.writer_apps.is_empty() || fa.reader_apps.is_empty() {
            continue;
        }
        for wr in fa.writer_apps.iter() {
            for rd in fa.reader_apps.iter() {
                if wr != rd {
                    dep_set.insert((
                        app_name_from(app_names, wr as u16),
                        app_name_from(app_names, rd as u16),
                    ));
                }
            }
        }
    }
    let mut app_deps: Vec<_> = dep_set.into_iter().collect();
    app_deps.sort();

    TraceProfile {
        io_time_frac,
        read_bytes: fused.read_bytes,
        write_bytes: fused.write_bytes,
        data_ops,
        meta_ops: fused.meta_ops,
        interface,
        access_pattern,
        req_sizes: fused.req_sizes,
        req_bandwidth: fused.req_bandwidth,
        read_timeline,
        write_timeline,
        files,
        phases,
        apps,
        app_deps,
        fault_events: fused.fault_events,
        retry_events: fused.retry_events,
        retried_bytes: fused.retried_bytes,
        fault_time: fused.fault_time,
        ckpt_events: fused.ckpt_events,
        ckpt_time: fused.ckpt_time,
        restart_events: fused.restart_events,
        crash_lost_time: fused.crash_lost_time,
        recovery_time: fused.recovery_time,
    }
}

impl TraceProfile {
    /// Fused single-pass profile: two parallel traversals (a cheap
    /// interface prescan, then the wide fused scan), one shared sort for
    /// phase/pattern detection, and a final timeline pass over data ops.
    ///
    /// The shard accumulators are dense: file ids, app ids, and ranks all
    /// live in small id spaces (sized by the prescan), so the inner loop
    /// indexes arrays and flips bitset bits instead of probing hash tables.
    pub fn fused(c: &ColumnarTrace, job_time: Dur) -> TraceProfile {
        let n = c.len();

        // Prescan: layer presence, id-space bounds, and the per-layer file
        // sets the interface-selection predicate needs. One parallel fold.
        struct PreShard {
            present: [bool; 6],
            layer_files: [IdSet; 6],
            n_ranks: usize,
            n_apps: usize,
            n_files: usize,
        }
        let pre = par::par_fold_shards(
            n,
            || PreShard {
                present: [false; 6],
                layer_files: Default::default(),
                n_ranks: 0,
                n_apps: 0,
                n_files: 0,
            },
            |acc: &mut PreShard, range| {
                for i in range {
                    let l = layer_idx(c.layer[i]);
                    acc.present[l] = true;
                    acc.n_ranks = acc.n_ranks.max(c.rank[i] as usize + 1);
                    acc.n_apps = acc.n_apps.max(c.app[i] as usize + 1);
                    if let Some(f) = c.file_id(i) {
                        acc.n_files = acc.n_files.max(f.0 as usize + 1);
                        if c.op[i].is_io() {
                            acc.layer_files[l].insert(f.0 as usize);
                        }
                    }
                }
            },
            |a, b| {
                for l in 0..6 {
                    a.present[l] |= b.present[l];
                    a.layer_files[l].merge(&b.layer_files[l]);
                }
                a.n_ranks = a.n_ranks.max(b.n_ranks);
                a.n_apps = a.n_apps.max(b.n_apps);
                a.n_files = a.n_files.max(b.n_files);
            },
        );
        let dims = Dims {
            n_files: pre.n_files.max(c.file_paths.len()),
            n_apps: pre.n_apps.max(c.app_names.len()),
            n_ranks: pre.n_ranks,
        };
        let interface = interface_from_presence(&pre.present);
        let mut iface_mask = [false; 6];
        for l in interface_layers(&interface) {
            iface_mask[layer_idx(l)] = true;
        }
        // Files touched at the interface layers: POSIX ops on *other* files
        // fall through into the selection (checkpoints written with raw
        // open/write/close while the dataset goes through HDF5 or stdio).
        let mut iface_file = vec![false; dims.n_files];
        for l in 0..6 {
            if iface_mask[l] {
                for f in pre.layer_files[l].iter() {
                    iface_file[f] = true;
                }
            }
        }
        let ctx = SelCtx {
            iface_mask,
            iface_file: &iface_file,
            posix_fallback: !iface_mask[layer_idx(Layer::Posix)],
        };

        // The fused scan: one traversal computes every per-record statistic.
        let mut fused = par::par_fold_shards(
            n,
            || FusedShard::new(dims),
            |acc: &mut FusedShard, range| {
                // One exact reservation per morsel instead of doubling
                // growth (io_idx can't outgrow the morsel).
                acc.io_idx.reserve(range.len());
                acc.data_idx.reserve(range.len());
                for i in range {
                    fold_fused_record(acc, c, i, &ctx);
                }
            },
            FusedShard::merge,
        );

        // One time-sort of the interface selection feeds both phase
        // detection and the access-pattern scan (the multipass path sorts
        // twice). Stable sort: ties in start keep ascending index order.
        let mut sorted_io = std::mem::take(&mut fused.io_idx);
        sorted_io.sort_by_key(|&i| c.start[i as usize]);
        let phases = detect_phases_sorted(c, &sorted_io, job_time);
        let sorted_data: Vec<u32> = sorted_io
            .iter()
            .copied()
            .filter(|&i| c.op[i as usize].is_data())
            .collect();
        let access_pattern = scan_access_pattern(c, &sorted_data);
        let (read_timeline, write_timeline) = build_timelines(c, &fused.data_idx, job_time);
        let data_ops = fused.data_idx.len() as u64;

        emit_profile(
            fused,
            &c.file_paths,
            &c.app_names,
            job_time,
            interface,
            access_pattern,
            phases,
            read_timeline,
            write_timeline,
            data_ops,
        )
    }

    /// The pre-fusion pipeline: one scan (or sequential loop) per
    /// statistic. Kept as the fused scan's oracle and benchmark baseline.
    pub fn multipass(c: &ColumnarTrace, job_time: Dur) -> TraceProfile {
        let interface = detect_interface(c);
        let iface_layers = interface_layers(&interface);

        // Interface-layer selections, plus POSIX ops on files the higher
        // layers never touch.
        let iface_files: HashSet<u32> = (0..c.len())
            .filter(|&i| c.op[i].is_io() && iface_layers.contains(&c.layer[i]))
            .filter_map(|i| c.file_id(i).map(|f| f.0))
            .collect();
        let io_sel = c.select(|i| {
            c.op[i].is_io()
                && (iface_layers.contains(&c.layer[i])
                    || (c.layer[i] == Layer::Posix
                        && !iface_layers.contains(&Layer::Posix)
                        && c.file_id(i).is_some_and(|f| !iface_files.contains(&f.0))))
        });
        let data_sel: Vec<u32> = io_sel
            .iter()
            .copied()
            .filter(|&i| c.op[i as usize].is_data())
            .collect();
        let meta_sel: Vec<u32> = io_sel
            .iter()
            .copied()
            .filter(|&i| c.op[i as usize].is_meta())
            .collect();

        let read_bytes = c.sum_bytes(
            &data_sel
                .iter()
                .copied()
                .filter(|&i| c.op[i as usize] == OpKind::Read)
                .collect::<Vec<_>>(),
        );
        let write_bytes = c.sum_bytes(
            &data_sel
                .iter()
                .copied()
                .filter(|&i| c.op[i as usize] == OpKind::Write)
                .collect::<Vec<_>>(),
        );

        let by_rank = c.group_by_rank(&io_sel);
        let io_time_frac = io_frac_from_rank_aggs(&by_rank, job_time);

        // Histograms over data ops.
        let mut req_sizes = Histogram::new();
        let mut req_bandwidth = Histogram::new();
        for &i in &data_sel {
            let i = i as usize;
            if c.bytes[i] == 0 {
                continue;
            }
            req_sizes.record(c.bytes[i]);
            let bw = Dur(c.end[i] - c.start[i]).bandwidth(c.bytes[i]);
            if bw.is_finite() {
                req_bandwidth.record(bw as u64);
            }
        }

        let (read_timeline, write_timeline) = build_timelines(c, &data_sel, job_time);

        let files = profile_files(c, &io_sel);
        let mut sorted_io = io_sel.clone();
        sorted_io.sort_by_key(|&i| c.start[i as usize]);
        let phases = detect_phases_sorted(c, &sorted_io, job_time);
        let (apps, app_deps) = profile_apps(c);
        let mut sorted_data = data_sel.clone();
        sorted_data.sort_by_key(|&i| c.start[i as usize]);
        let access_pattern = scan_access_pattern(c, &sorted_data);

        // Resilience counters: a dedicated scan over every record (fault and
        // retry records are neither data nor metadata, so no selection above
        // ever sees them).
        let mut fault_events = 0u64;
        let mut retry_events = 0u64;
        let mut retried_bytes = 0u64;
        let mut fault_time = Dur::ZERO;
        let mut ckpt_events = 0u64;
        let mut ckpt_time = Dur::ZERO;
        let mut restart_events = 0u64;
        let mut crash_lost_time = Dur::ZERO;
        let mut recovery_time = Dur::ZERO;
        for i in 0..c.len() {
            match c.op[i] {
                OpKind::Fault => {
                    fault_events += 1;
                    fault_time += Dur(c.end[i] - c.start[i]);
                }
                OpKind::Retry => {
                    retry_events += 1;
                    retried_bytes += c.bytes[i];
                    fault_time += Dur(c.end[i] - c.start[i]);
                }
                OpKind::Checkpoint => {
                    ckpt_events += 1;
                    ckpt_time += Dur(c.end[i] - c.start[i]);
                }
                OpKind::Crash => {
                    crash_lost_time += Dur(c.end[i] - c.start[i]);
                }
                OpKind::RestartEpoch => {
                    restart_events += 1;
                    recovery_time += Dur(c.end[i] - c.start[i]);
                }
                _ => {}
            }
        }

        TraceProfile {
            io_time_frac,
            read_bytes,
            write_bytes,
            data_ops: data_sel.len() as u64,
            meta_ops: meta_sel.len() as u64,
            interface,
            access_pattern,
            req_sizes,
            req_bandwidth,
            read_timeline,
            write_timeline,
            files,
            phases,
            apps,
            app_deps,
            fault_events,
            retry_events,
            retried_bytes,
            fault_time,
            ckpt_events,
            ckpt_time,
            restart_events,
            crash_lost_time,
            recovery_time,
        }
    }
}

// ---------------------------------------------------------------------------
// Multipass profiling loops (oracle path)
// ---------------------------------------------------------------------------

fn profile_files(c: &ColumnarTrace, io_sel: &[u32]) -> Vec<FileProfile> {
    let mut map: HashMap<u32, FileProfile> = HashMap::new();
    for &i in io_sel {
        let i = i as usize;
        let Some(fid) = c.file_id(i) else { continue };
        map.entry(fid.0)
            .or_insert_with(|| FileProfile {
                path: c
                    .file_paths
                    .get(fid.0 as usize)
                    .cloned()
                    .unwrap_or_default(),
                ..Default::default()
            })
            .absorb(c, i);
    }
    sort_files(map.into_values().collect())
}

fn profile_apps(c: &ColumnarTrace) -> (Vec<AppProfile>, Vec<(String, String)>) {
    let mut map: HashMap<u16, AppProfile> = HashMap::new();
    let mut ranks: HashMap<u16, HashSet<u32>> = HashMap::new();
    // File producers/consumers at app granularity.
    let mut writers_of: HashMap<u32, HashSet<u16>> = HashMap::new();
    let mut readers_of: HashMap<u32, HashSet<u16>> = HashMap::new();
    for i in 0..c.len() {
        if !c.op[i].is_io() {
            continue;
        }
        let app = c.app[i];
        let p = map.entry(app).or_insert_with(|| AppProfile {
            name: app_name(c, app),
            first: SimTime(u64::MAX),
            ..Default::default()
        });
        ranks.entry(app).or_default().insert(c.rank[i]);
        p.first = p.first.min(SimTime(c.start[i]));
        p.last = p.last.max(SimTime(c.end[i]));
        match c.op[i] {
            OpKind::Read => {
                p.read_bytes += c.bytes[i];
                p.data_ops += 1;
                if let Some(f) = c.file_id(i) {
                    readers_of.entry(f.0).or_default().insert(app);
                }
            }
            OpKind::Write => {
                p.write_bytes += c.bytes[i];
                p.data_ops += 1;
                if let Some(f) = c.file_id(i) {
                    writers_of.entry(f.0).or_default().insert(app);
                }
            }
            _ => p.meta_ops += 1,
        }
    }
    for (app, r) in ranks {
        if let Some(p) = map.get_mut(&app) {
            p.processes = r.len();
        }
    }
    let deps = deps_from_file_maps(c, &writers_of, &readers_of);
    (sort_apps(map.into_values().collect()), deps)
}

// ---------------------------------------------------------------------------
// Shared detectors (operate on pre-sorted selections)
// ---------------------------------------------------------------------------

/// Phase detection: a gap larger than `job_time / 50` between consecutive
/// interface-layer I/O calls (aggregated across ranks) splits phases —
/// the paper's "threshold between two I/O calls". `sorted_io` must be
/// sorted by record start time.
pub(crate) fn detect_phases_sorted(
    c: &ColumnarTrace,
    sorted_io: &[u32],
    job_time: Dur,
) -> Vec<PhaseInfo> {
    if sorted_io.is_empty() {
        return Vec::new();
    }
    let threshold = phase_threshold(job_time);
    let mut phases: Vec<PhaseInfo> = Vec::new();
    let mut cur: Option<(PhaseInfo, Histogram)> = None;
    let mut frontier = SimTime::ZERO;
    for &i in sorted_io {
        let i = i as usize;
        let start = SimTime(c.start[i]);
        let end = SimTime(c.end[i]);
        let begin_new = match &cur {
            None => true,
            Some(_) => start.since(frontier) > threshold,
        };
        if begin_new {
            if let Some((mut ph, hist)) = cur.take() {
                ph.dominant_xfer = dominant_bucket(&hist);
                phases.push(ph);
            }
            cur = Some((
                PhaseInfo {
                    start,
                    end,
                    bytes: 0,
                    data_ops: 0,
                    meta_ops: 0,
                    dominant_xfer: 0,
                },
                Histogram::new(),
            ));
            frontier = end;
        }
        let (ph, hist) = cur.as_mut().expect("phase open");
        ph.end = ph.end.max(end);
        frontier = frontier.max(end);
        if c.op[i].is_data() {
            ph.bytes += c.bytes[i];
            ph.data_ops += 1;
            if c.bytes[i] > 0 {
                hist.record(c.bytes[i]);
            }
        } else {
            ph.meta_ops += 1;
        }
    }
    if let Some((mut ph, hist)) = cur.take() {
        ph.dominant_xfer = dominant_bucket(&hist);
        phases.push(ph);
    }
    phases
}

/// The phase-splitting gap: `job_time / 50`, floored at 1 ms. Every
/// analyzer path must derive its threshold from this.
pub(crate) fn phase_threshold(job_time: Dur) -> Dur {
    Dur((job_time.as_nanos() / 50).max(1_000_000))
}

pub(crate) fn dominant_bucket(h: &Histogram) -> u64 {
    h.iter()
        .max_by_key(|&(_, count)| count)
        .map(|(b, _)| b)
        .unwrap_or(0)
}

/// Sequential if, per (rank, file), data-op offsets are non-decreasing for
/// nearly all consecutive pairs. `sorted_data` must be sorted by record
/// start time.
///
/// The per-(rank, file) offset frontier lives in a dense `rank × file`
/// table when that product is small enough (one array index per record
/// instead of a hash probe — this scan is on the fused path's critical
/// path), falling back to a `HashMap` for traces whose id-space product is
/// too large to allocate densely. Both layouts count identically.
pub(crate) fn scan_access_pattern(c: &ColumnarTrace, sorted_data: &[u32]) -> String {
    let mut max_rank = 0usize;
    let mut max_file = 0usize;
    let mut any = false;
    for &i in sorted_data {
        let i = i as usize;
        if let Some(f) = c.file_id(i) {
            any = true;
            max_rank = max_rank.max(c.rank[i] as usize);
            max_file = max_file.max(f.0 as usize);
        }
    }
    if !any {
        return "Seq".to_string();
    }
    let mut seq = 0u64;
    let mut total = 0u64;
    let stride = max_file + 1;
    let cells = (max_rank + 1).saturating_mul(stride);
    /// Largest dense frontier table worth allocating: 4M cells = 32 MiB.
    const DENSE_LIMIT: usize = 4 << 20;
    if cells <= DENSE_LIMIT {
        // u64::MAX = no previous access for this (rank, file).
        let mut last = vec![u64::MAX; cells];
        for &i in sorted_data {
            let i = i as usize;
            let Some(f) = c.file_id(i) else { continue };
            let cell = &mut last[c.rank[i] as usize * stride + f.0 as usize];
            if *cell != u64::MAX {
                total += 1;
                if c.offset[i] >= *cell {
                    seq += 1;
                }
            }
            *cell = c.offset[i] + c.bytes[i];
        }
    } else {
        let mut last: HashMap<(u32, u32), u64> = HashMap::new();
        for &i in sorted_data {
            let i = i as usize;
            let Some(f) = c.file_id(i) else { continue };
            if let Some(&prev_end) = last.get(&(c.rank[i], f.0)) {
                total += 1;
                if c.offset[i] >= prev_end {
                    seq += 1;
                }
            }
            last.insert((c.rank[i], f.0), c.offset[i] + c.bytes[i]);
        }
    }
    if total == 0 || seq as f64 / total as f64 >= 0.85 {
        "Seq".to_string()
    } else {
        "Mixed".to_string()
    }
}

/// Sample the dataset's value bytes and classify the distribution. Samples
/// the most-read files, skipping the first KiB of format headers.
fn fit_data_distribution(run: &WorkloadRun, files: &[FileProfile]) -> DistributionFit {
    let mut summary = Summary::new();
    let store = run.world.storage.pfs().store();
    let mut sampled = 0;
    for f in files.iter().filter(|f| f.read_bytes > 0).take(4) {
        if let Some(key) = store.lookup(&f.path) {
            let bytes = store.read(key, 1024, 8192).unwrap_or_default();
            for &b in &bytes {
                summary.record(b as f64);
            }
            sampled += 1;
        }
    }
    if sampled == 0 {
        return DistributionFit::Unknown;
    }
    DistributionFit::classify(&summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use exemplar_workloads::{cm1, cosmoflow, hacc, jag, montage};
    use sim_core::units::KIB;

    #[test]
    fn hacc_analysis_matches_expected_shape() {
        let run = hacc::run(0.02, 1);
        let a = Analysis::from_run(&run);
        assert_eq!(a.interface, "POSIX");
        assert_eq!(a.shared_files(), 0, "HACC is strict FPP");
        assert_eq!(a.fpp_files(), run.world.alloc.total_ranks() as usize);
        assert_eq!(a.read_bytes, a.write_bytes);
        assert_eq!(a.access_pattern, "Seq");
        assert_eq!(a.data_dist, DistributionFit::Uniform);
        // Metadata around half of ops.
        assert!((0.3..=0.85).contains(&(1.0 - a.data_frac())));
    }

    #[test]
    fn cm1_analysis_finds_rank0_writer_and_phases() {
        // Multiple nodes so several leaders open the shared step files.
        let mut p = cm1::Cm1Params::scaled(0.02);
        p.nodes = 4;
        let run = cm1::run_with(p, 0.02, 42);
        let a = Analysis::from_run(&run);
        assert_eq!(a.interface, "POSIX");
        // Output files are shared (opened by leaders) but written by rank 0.
        let out_files: Vec<&FileProfile> = a
            .files
            .iter()
            .filter(|f| f.path.contains("/out/"))
            .collect();
        assert!(!out_files.is_empty());
        for f in &out_files {
            assert!(f.writers.iter().all(|&r| r == 0), "only rank 0 writes");
            assert!(f.is_shared(), "leaders open the step files");
        }
        // Multiple I/O phases: config read then per-step writes.
        assert!(a.phases.len() >= 2, "phases: {}", a.phases.len());
        assert_eq!(a.data_dist, DistributionFit::Normal);
    }

    #[test]
    fn cosmoflow_analysis_detects_hdf5_and_metadata_storm() {
        let run = cosmoflow::run(0.002, 5);
        let a = Analysis::from_run(&run);
        assert_eq!(a.interface, "HDF5-MPI-IO");
        assert!(a.shared_files() > 0);
        // The dataset itself is fully shared; only rank-0's checkpoint
        // files register as FPP through the POSIX fallback.
        assert!(
            a.files
                .iter()
                .filter(|f| f.path.contains("univ_"))
                .all(|f| f.is_shared()),
            "every dataset file is shared"
        );
        assert!(
            a.meta_ops > a.data_ops,
            "metadata ops {} must exceed data ops {}",
            a.meta_ops,
            a.data_ops
        );
        assert_eq!(a.data_dist, DistributionFit::Gamma);
    }

    #[test]
    fn jag_analysis_is_stdio_small_access() {
        let run = jag::run(0.02, 9);
        let a = Analysis::from_run(&run);
        assert_eq!(a.interface, "STDIO");
        let (_, hi) = a.granularity();
        assert!(hi <= 4 * KIB, "JAG granularity {hi} stays under 4 KiB");
        assert_eq!(a.data_dist, DistributionFit::Normal);
    }

    #[test]
    fn montage_analysis_sees_workflow_apps_and_deps() {
        let run = montage::run(0.02, 2);
        let a = Analysis::from_run(&run);
        assert_eq!(a.interface, "STDIO");
        assert!(
            a.apps.len() >= 5,
            "apps: {:?}",
            a.apps.iter().map(|x| &x.name).collect::<Vec<_>>()
        );
        // mProject produces what mAddMPI consumes.
        assert!(
            a.app_deps
                .iter()
                .any(|(from, to)| from == "mProject" && to == "mAddMPI"),
            "deps: {:?}",
            a.app_deps
        );
        assert!(a.data_frac() > 0.5, "Montage is data-op dominated");
    }

    #[test]
    fn histograms_and_timelines_conserve_bytes() {
        let run = hacc::run(0.02, 1);
        let a = Analysis::from_run(&run);
        let hist_bytes: u128 = a.req_sizes.sum();
        assert_eq!(hist_bytes, (a.read_bytes + a.write_bytes) as u128);
        let tl_total = a.read_timeline.total() + a.write_timeline.total();
        let expect = (a.read_bytes + a.write_bytes) as f64;
        assert!((tl_total - expect).abs() < 1e-6 * expect);
    }

    #[test]
    fn phase_one_of_hacc_is_the_checkpoint() {
        let run = hacc::run(0.02, 1);
        let a = Analysis::from_run(&run);
        assert!(!a.phases.is_empty());
        let p0 = &a.phases[0];
        // First phase writes the checkpoint: data-dominated, large xfers.
        assert!(p0.bytes > 0);
        assert!(p0.data_ops > 0);
    }

    #[test]
    fn fused_equals_multipass_on_hacc() {
        let run = hacc::run(0.02, 1);
        let fused = Analysis::from_run(&run);
        let multi = Analysis::from_run_multipass(&run);
        assert_eq!(fused, multi);
    }
}
