//! Deterministic FCFS job scheduler for the shared cluster.
//!
//! Jobs are admitted in strict submission (job-id) order onto a fixed pool
//! of nodes: a job starts at the earliest instant at or after its submit
//! time when (a) every earlier job has already started — no backfill, so
//! admission order equals job order — and (b) enough nodes are free.
//! Runtimes are *estimates* from the dedicated profile runs; the scheduler
//! is a placement model, not a second simulator, and its arithmetic is a
//! sequential fold over job ids so placements are identical on every
//! machine and at every worker count.

use super::arrival::ArrivalProcess;

/// What one job asks of the cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobDemand {
    /// Nodes the job occupies while running.
    pub nodes: u32,
    /// Estimated runtime, seconds (from the dedicated profile run).
    pub est_runtime: f64,
}

/// Where the scheduler put one job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Placement {
    /// Job id (index into the manifest).
    pub id: usize,
    /// When the job was submitted.
    pub submit: f64,
    /// When it started (placement instant).
    pub start: f64,
    /// Estimated completion (`start + est_runtime`).
    pub end: f64,
}

impl Placement {
    /// Queueing delay between submission and start.
    pub fn wait(&self) -> f64 {
        self.start - self.submit
    }
}

/// Submission times handed to the scheduler.
pub enum ScheduleArrivals<'a> {
    /// Open process: pre-drawn submit times, one per job, non-decreasing.
    Open(&'a [f64]),
    /// Closed process: the first `concurrency` jobs submit at t = 0; job
    /// `i` (i ≥ concurrency) submits when job `i - concurrency` completes
    /// plus the think time.
    Closed {
        /// Jobs in flight.
        concurrency: usize,
        /// Seconds between a completion and the next submission.
        think_time: f64,
    },
}

impl<'a> ScheduleArrivals<'a> {
    /// Build from an [`ArrivalProcess`] plus the pre-drawn open submits.
    pub fn from_process(p: &ArrivalProcess, open_submits: &'a [f64]) -> Self {
        match p {
            ArrivalProcess::Open { .. } => ScheduleArrivals::Open(open_submits),
            ArrivalProcess::Closed { concurrency, think_time } => {
                ScheduleArrivals::Closed { concurrency: (*concurrency).max(1), think_time: *think_time }
            }
        }
    }
}

/// Place every job FCFS onto `cluster_nodes` nodes. Panics if a job wants
/// more nodes than the cluster has — callers validate that with a typed
/// [`super::FleetError::JobTooLarge`] before scheduling.
pub fn fcfs_schedule(
    cluster_nodes: u32,
    demands: &[JobDemand],
    arrivals: &ScheduleArrivals<'_>,
) -> Vec<Placement> {
    let mut placements: Vec<Placement> = Vec::with_capacity(demands.len());
    // Running set: (estimated end, nodes). Small (bounded by concurrent
    // jobs), so linear scans beat a heap and keep tie-breaking explicit:
    // the earliest end wins, and among equal ends the lowest index (the
    // earliest-admitted job) releases first.
    let mut running: Vec<(f64, u32)> = Vec::new();
    let mut free = cluster_nodes;
    let mut prev_start = 0.0f64;
    for (i, d) in demands.iter().enumerate() {
        assert!(
            d.nodes <= cluster_nodes,
            "job {i} wants {} nodes on a {cluster_nodes}-node cluster",
            d.nodes
        );
        let submit = match arrivals {
            ScheduleArrivals::Open(ts) => ts[i],
            ScheduleArrivals::Closed { concurrency, think_time } => {
                if i < *concurrency {
                    0.0
                } else {
                    placements[i - concurrency].end + think_time
                }
            }
        };
        // No backfill: a job never starts before its predecessor.
        let mut t = if submit > prev_start { submit } else { prev_start };
        loop {
            // Release everything that has finished by `t`.
            let mut k = 0;
            while k < running.len() {
                if running[k].0 <= t {
                    free += running[k].1;
                    running.swap_remove(k);
                } else {
                    k += 1;
                }
            }
            if free >= d.nodes {
                break;
            }
            // Advance to the earliest outstanding completion.
            let mut next = f64::INFINITY;
            for &(end, _) in &running {
                if end < next {
                    next = end;
                }
            }
            assert!(next.is_finite(), "deadlock: nothing running but not enough nodes");
            t = next;
        }
        free -= d.nodes;
        let end = t + d.est_runtime.max(0.0);
        running.push((end, d.nodes));
        placements.push(Placement { id: i, submit, start: t, end });
        prev_start = t;
    }
    placements
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(nodes: u32, rt: f64) -> JobDemand {
        JobDemand { nodes, est_runtime: rt }
    }

    #[test]
    fn uncontended_jobs_start_at_submission() {
        let demands = [d(2, 10.0), d(2, 10.0), d(2, 10.0)];
        let submits = [0.0, 1.0, 2.0];
        let p = fcfs_schedule(16, &demands, &ScheduleArrivals::Open(&submits));
        assert_eq!(p[0].start, 0.0);
        assert_eq!(p[1].start, 1.0);
        assert_eq!(p[2].start, 2.0);
    }

    #[test]
    fn saturated_cluster_queues_fcfs() {
        // 4 nodes; each job takes all of them: strict serialization.
        let demands = [d(4, 5.0), d(4, 5.0), d(4, 5.0)];
        let submits = [0.0, 0.0, 0.0];
        let p = fcfs_schedule(4, &demands, &ScheduleArrivals::Open(&submits));
        assert_eq!(p[0].start, 0.0);
        assert_eq!(p[1].start, 5.0);
        assert_eq!(p[2].start, 10.0);
        assert!(p.windows(2).all(|w| w[1].start >= w[0].start), "admission order");
    }

    #[test]
    fn no_backfill_small_job_waits_for_big_head() {
        // Job 1 wants the whole cluster and queues; job 2 would fit in the
        // leftover nodes but must not overtake it.
        let demands = [d(2, 10.0), d(4, 5.0), d(1, 1.0)];
        let submits = [0.0, 0.0, 0.0];
        let p = fcfs_schedule(4, &demands, &ScheduleArrivals::Open(&submits));
        assert_eq!(p[1].start, 10.0);
        assert!(p[2].start >= p[1].start, "no backfill past the queue head");
    }

    #[test]
    fn capacity_is_never_exceeded() {
        let demands: Vec<JobDemand> = (0..40).map(|i| d(1 + (i % 3), 3.0 + i as f64 * 0.1)).collect();
        let submits: Vec<f64> = (0..40).map(|i| i as f64 * 0.5).collect();
        let cluster = 6u32;
        let p = fcfs_schedule(cluster, &demands, &ScheduleArrivals::Open(&submits));
        // Check occupancy at every start instant.
        for probe in &p {
            let t = probe.start;
            let used: u32 = p
                .iter()
                .zip(&demands)
                .filter(|(pl, _)| pl.start <= t && t < pl.end)
                .map(|(_, dm)| dm.nodes)
                .sum();
            assert!(used <= cluster, "{used} nodes used at t={t}");
        }
    }

    #[test]
    fn closed_loop_keeps_concurrency_bounded() {
        let demands: Vec<JobDemand> = (0..12).map(|_| d(1, 10.0)).collect();
        let p = fcfs_schedule(
            64,
            &demands,
            &ScheduleArrivals::Closed { concurrency: 3, think_time: 1.0 },
        );
        // First three at t=0; job 3 submits when job 0 ends (+1s think).
        assert_eq!(p[0].start, 0.0);
        assert_eq!(p[2].start, 0.0);
        assert_eq!(p[3].submit, 11.0);
        assert_eq!(p[3].start, 11.0);
        // At any start instant at most `concurrency` jobs are in flight.
        for probe in &p {
            let t = probe.start;
            let inflight = p.iter().filter(|pl| pl.start <= t && t < pl.end).count();
            assert!(inflight <= 3, "{inflight} jobs in flight at t={t}");
        }
    }

    #[test]
    fn schedule_is_deterministic() {
        let demands: Vec<JobDemand> = (0..30).map(|i| d(1 + (i % 4), 2.0 + i as f64 * 0.3)).collect();
        let submits: Vec<f64> = (0..30).map(|i| (i as f64 * 0.7) % 11.0 + i as f64 * 0.2).collect();
        let a = fcfs_schedule(8, &demands, &ScheduleArrivals::Open(&submits));
        let b = fcfs_schedule(8, &demands, &ScheduleArrivals::Open(&submits));
        assert_eq!(a, b);
    }
}
