//! Deterministic FCFS job scheduler for the shared cluster.
//!
//! Jobs are admitted in strict submission (job-id) order onto a fixed pool
//! of nodes: a job starts at the earliest instant at or after its submit
//! time when (a) every earlier job has already started — no backfill, so
//! admission order equals job order — and (b) enough nodes are free.
//! Runtimes are *estimates* from the dedicated profile runs; the scheduler
//! is a placement model, not a second simulator, and its arithmetic is a
//! sequential fold over job ids so placements are identical on every
//! machine and at every worker count.
//!
//! [`resilient_schedule`] extends this with fleet failure domains: under a
//! [`NodeFaultPlan`] the schedulable pool shrinks while nodes are down,
//! any job holding a failed node is killed mid-run, and the self-healing
//! policy requeues it with exponential backoff until its retry budget is
//! exhausted ([`JobOutcome::Abandoned`]). With an empty plan and backfill
//! off, it delegates to [`fcfs_schedule`] — placements are bit-identical
//! to the pre-failure-domain scheduler by construction.

use super::arrival::ArrivalProcess;
use super::outage::NodeFaultPlan;

/// What one job asks of the cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobDemand {
    /// Nodes the job occupies while running.
    pub nodes: u32,
    /// Estimated runtime, seconds (from the dedicated profile run).
    pub est_runtime: f64,
}

/// Where the scheduler put one job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Placement {
    /// Job id (index into the manifest).
    pub id: usize,
    /// When the job was submitted.
    pub submit: f64,
    /// When it started (placement instant).
    pub start: f64,
    /// Estimated completion (`start + est_runtime`).
    pub end: f64,
}

impl Placement {
    /// Queueing delay between submission and start.
    pub fn wait(&self) -> f64 {
        self.start - self.submit
    }
}

/// Submission times handed to the scheduler.
pub enum ScheduleArrivals<'a> {
    /// Open process: pre-drawn submit times, one per job, non-decreasing.
    Open(&'a [f64]),
    /// Closed process: the first `concurrency` jobs submit at t = 0; job
    /// `i` (i ≥ concurrency) submits when job `i - concurrency` completes
    /// plus the think time.
    Closed {
        /// Jobs in flight.
        concurrency: usize,
        /// Seconds between a completion and the next submission.
        think_time: f64,
    },
}

impl<'a> ScheduleArrivals<'a> {
    /// Build from an [`ArrivalProcess`] plus the pre-drawn open submits.
    pub fn from_process(p: &ArrivalProcess, open_submits: &'a [f64]) -> Self {
        match p {
            ArrivalProcess::Open { .. } => ScheduleArrivals::Open(open_submits),
            ArrivalProcess::Closed {
                concurrency,
                think_time,
            } => ScheduleArrivals::Closed {
                concurrency: (*concurrency).max(1),
                think_time: *think_time,
            },
        }
    }
}

/// Place every job FCFS onto `cluster_nodes` nodes. Panics if a job wants
/// more nodes than the cluster has — callers validate that with a typed
/// [`super::FleetError::JobTooLarge`] before scheduling.
pub fn fcfs_schedule(
    cluster_nodes: u32,
    demands: &[JobDemand],
    arrivals: &ScheduleArrivals<'_>,
) -> Vec<Placement> {
    let mut placements: Vec<Placement> = Vec::with_capacity(demands.len());
    // Running set: (estimated end, nodes). Small (bounded by concurrent
    // jobs), so linear scans beat a heap and keep tie-breaking explicit:
    // the earliest end wins, and among equal ends the lowest index (the
    // earliest-admitted job) releases first.
    let mut running: Vec<(f64, u32)> = Vec::new();
    let mut free = cluster_nodes;
    let mut prev_start = 0.0f64;
    for (i, d) in demands.iter().enumerate() {
        assert!(
            d.nodes <= cluster_nodes,
            "job {i} wants {} nodes on a {cluster_nodes}-node cluster",
            d.nodes
        );
        let submit = match arrivals {
            ScheduleArrivals::Open(ts) => ts[i],
            ScheduleArrivals::Closed {
                concurrency,
                think_time,
            } => {
                if i < *concurrency {
                    0.0
                } else {
                    placements[i - concurrency].end + think_time
                }
            }
        };
        // No backfill: a job never starts before its predecessor.
        let mut t = if submit > prev_start {
            submit
        } else {
            prev_start
        };
        loop {
            // Release everything that has finished by `t`.
            let mut k = 0;
            while k < running.len() {
                if running[k].0 <= t {
                    free += running[k].1;
                    running.swap_remove(k);
                } else {
                    k += 1;
                }
            }
            if free >= d.nodes {
                break;
            }
            // Advance to the earliest outstanding completion.
            let mut next = f64::INFINITY;
            for &(end, _) in &running {
                if end < next {
                    next = end;
                }
            }
            assert!(
                next.is_finite(),
                "deadlock: nothing running but not enough nodes"
            );
            t = next;
        }
        free -= d.nodes;
        let end = t + d.est_runtime.max(0.0);
        running.push((end, d.nodes));
        placements.push(Placement {
            id: i,
            submit,
            start: t,
            end,
        });
        prev_start = t;
    }
    placements
}

/// The self-healing scheduler's knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedPolicy {
    /// Allow small jobs to flow around a queue head that does not fit
    /// (first-fit backfill). Off reproduces strict FCFS admission order.
    pub backfill: bool,
    /// Requeues a killed job may consume before it is abandoned.
    pub max_retries: u32,
    /// Requeue delay after the first kill, seconds.
    pub base_backoff: f64,
    /// Backoff growth per further kill.
    pub backoff_multiplier: f64,
    /// Backoff ceiling, seconds.
    pub max_backoff: f64,
}

impl SchedPolicy {
    /// The fleet default: strict FCFS, three retries, 30 s → 60 s → 120 s
    /// exponential backoff capped at 480 s.
    pub fn standard() -> Self {
        SchedPolicy {
            backfill: false,
            max_retries: 3,
            base_backoff: 30.0,
            backoff_multiplier: 2.0,
            max_backoff: 480.0,
        }
    }

    /// Requeue delay after a job's `kills`-th kill (1-based).
    pub fn requeue_delay(&self, kills: u32) -> f64 {
        let exp = kills.saturating_sub(1).min(63);
        (self.base_backoff * self.backoff_multiplier.powi(exp as i32))
            .min(self.max_backoff)
            .max(0.0)
    }
}

impl Default for SchedPolicy {
    fn default() -> Self {
        SchedPolicy::standard()
    }
}

/// How one job's fleet story ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobOutcome {
    /// Ran once, finished.
    Completed,
    /// Killed by node outages `n` times, finished on attempt `n + 1`.
    CompletedAfterRetry(u32),
    /// Retry budget exhausted; the job never finished.
    Abandoned,
}

impl JobOutcome {
    /// Stable name for tables and JSON.
    pub fn name(&self) -> &'static str {
        match self {
            JobOutcome::Completed => "completed",
            JobOutcome::CompletedAfterRetry(_) => "completed-after-retry",
            JobOutcome::Abandoned => "abandoned",
        }
    }

    /// Kills the job absorbed before this outcome (0 for [`Completed`],
    /// `n` for both `CompletedAfterRetry(n)` and the abandoned case).
    pub fn retries(&self) -> u32 {
        match self {
            JobOutcome::Completed => 0,
            JobOutcome::CompletedAfterRetry(n) => *n,
            JobOutcome::Abandoned => 0,
        }
    }

    /// Whether the job eventually produced its result.
    pub fn completed(&self) -> bool {
        !matches!(self, JobOutcome::Abandoned)
    }
}

/// One placement attempt of one job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobAttempt {
    /// Attempt index (0 = first placement).
    pub attempt: u32,
    /// Start instant, seconds.
    pub start: f64,
    /// End instant: estimated completion, or the kill instant.
    pub end: f64,
    /// The failed node that killed this attempt (`None` = ran to
    /// completion).
    pub killed_by: Option<u32>,
}

/// One job's full history under the self-healing scheduler.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSchedule {
    /// Job id (admission position).
    pub id: usize,
    /// Submission instant, seconds.
    pub submit: f64,
    /// Every placement attempt, in time order (never empty: the pool
    /// always recovers, so every job starts at least once).
    pub attempts: Vec<JobAttempt>,
    /// How the story ended.
    pub outcome: JobOutcome,
}

impl JobSchedule {
    /// The job's last attempt (the completed one unless abandoned).
    pub fn final_attempt(&self) -> &JobAttempt {
        self.attempts
            .last()
            .expect("every scheduled job has at least one attempt")
    }

    /// The job's final interval as a legacy [`Placement`] (abandoned jobs
    /// report their last killed attempt).
    pub fn as_placement(&self) -> Placement {
        let a = self.final_attempt();
        Placement {
            id: self.id,
            submit: self.submit,
            start: a.start,
            end: a.end,
        }
    }

    /// Node-seconds of work the outages destroyed: killed attempts'
    /// occupancy, charged at the job's node width.
    pub fn lost_node_secs(&self, nodes: u32) -> f64 {
        self.attempts
            .iter()
            .filter(|a| a.killed_by.is_some())
            .map(|a| (a.end - a.start).max(0.0) * nodes as f64)
            .sum::<f64>()
            + 0.0
    }
}

/// Internal: one job currently holding nodes.
struct Running {
    job: usize,
    attempt: u32,
    start: f64,
    end: f64,
    held: Vec<u32>,
}

/// Place every job onto a cluster whose nodes fail and are repaired per
/// `plan`, requeueing killed jobs per `policy`. Returns one
/// [`JobSchedule`] per job, in job-id order.
///
/// Event processing at equal instants is fixed — completions, then
/// repairs, then outage kills, then placements — and every queue is
/// ordered by `(ready time, job id)`, so the schedule is a deterministic
/// sequential fold. With an empty plan and backfill off this delegates to
/// [`fcfs_schedule`], making the healthy fleet bit-identical to the
/// legacy scheduler.
pub fn resilient_schedule(
    cluster_nodes: u32,
    demands: &[JobDemand],
    arrivals: &ScheduleArrivals<'_>,
    plan: &NodeFaultPlan,
    policy: &SchedPolicy,
) -> Vec<JobSchedule> {
    if plan.is_empty() && !policy.backfill {
        return fcfs_schedule(cluster_nodes, demands, arrivals)
            .into_iter()
            .map(|p| JobSchedule {
                id: p.id,
                submit: p.submit,
                attempts: vec![JobAttempt {
                    attempt: 0,
                    start: p.start,
                    end: p.end,
                    killed_by: None,
                }],
                outcome: JobOutcome::Completed,
            })
            .collect();
    }
    let n = demands.len();
    for (i, d) in demands.iter().enumerate() {
        assert!(
            d.nodes <= cluster_nodes,
            "job {i} wants {} nodes on a {cluster_nodes}-node cluster",
            d.nodes
        );
    }
    // Outage starts in (at, node) order; repairs in (until, node) order.
    let starts: Vec<(f64, u32, f64)> = plan
        .outages
        .iter()
        .map(|o| (o.at, o.node, o.until))
        .collect();
    let mut repairs: Vec<(f64, u32)> = plan.outages.iter().map(|o| (o.until, o.node)).collect();
    repairs.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let (mut si, mut ri) = (0usize, 0usize);

    // Per-node state: how many active outages cover it, and who holds it.
    let mut down: Vec<u32> = vec![0; cluster_nodes as usize];
    let mut holder: Vec<Option<usize>> = vec![None; cluster_nodes as usize];

    // Submission bookkeeping (closed processes derive submits from
    // terminal events of the job `concurrency` positions earlier).
    let mut submits: Vec<f64> = vec![f64::NAN; n];
    let mut queue: Vec<(f64, usize, u32)> = Vec::new(); // (ready, job, attempt)
    match arrivals {
        ScheduleArrivals::Open(ts) => {
            for (i, &s) in ts.iter().enumerate() {
                submits[i] = s;
                queue.push((s, i, 0));
            }
        }
        ScheduleArrivals::Closed { concurrency, .. } => {
            for i in 0..n.min((*concurrency).max(1)) {
                submits[i] = 0.0;
                queue.push((0.0, i, 0));
            }
        }
    }

    let mut running: Vec<Running> = Vec::new();
    let mut kills: Vec<u32> = vec![0; n]; // kills absorbed so far
    let mut scheds: Vec<JobSchedule> = (0..n)
        .map(|id| JobSchedule {
            id,
            submit: 0.0,
            attempts: Vec::new(),
            outcome: JobOutcome::Completed,
        })
        .collect();
    let mut terminal: Vec<Option<f64>> = vec![None; n];

    // The clock starts before every event (all times are ≥ 0). Queue
    // entries whose ready time is ≤ t are *blocked* — they are retried on
    // every state-changing event but must not drive the clock, or a job
    // waiting out an outage would stall it. Only ready times strictly
    // ahead of the clock count as events.
    let mut t = -1.0f64;
    loop {
        // Next event instant.
        let mut next = f64::INFINITY;
        for r in &running {
            next = next.min(r.end);
        }
        if ri < repairs.len() {
            next = next.min(repairs[ri].0);
        }
        if si < starts.len() && (!running.is_empty() || !queue.is_empty() || ri < repairs.len()) {
            // Outage starts only matter while anything can still happen;
            // ignoring trailing ones lets the loop terminate early.
            next = next.min(starts[si].0);
        }
        for &(ready, _, _) in &queue {
            if ready > t {
                next = next.min(ready);
            }
        }
        if !next.is_finite() {
            break;
        }
        t = next;

        // (a) Completions at t (descending index so swap_remove is sound;
        // completions commute — each touches only its own job's state).
        let mut finished: Vec<usize> = Vec::new(); // indices into `running`
        for (k, r) in running.iter().enumerate() {
            if r.end <= t {
                finished.push(k);
            }
        }
        finished.sort_unstable();
        let mut newly_terminal: Vec<usize> = Vec::new();
        for &k in finished.iter().rev() {
            let r = running.swap_remove(k);
            for &nd in &r.held {
                holder[nd as usize] = None;
            }
            scheds[r.job].attempts.push(JobAttempt {
                attempt: r.attempt,
                start: r.start,
                end: r.end,
                killed_by: None,
            });
            scheds[r.job].outcome = if kills[r.job] == 0 {
                JobOutcome::Completed
            } else {
                JobOutcome::CompletedAfterRetry(kills[r.job])
            };
            terminal[r.job] = Some(r.end);
            newly_terminal.push(r.job);
        }

        // (b) Repairs at t (before kills: a node repaired and re-failed at
        // the same instant stays down via its new outage).
        while ri < repairs.len() && repairs[ri].0 <= t {
            let nd = repairs[ri].1 as usize;
            down[nd] = down[nd].saturating_sub(1);
            ri += 1;
        }

        // (c) Outage starts at t: take nodes down, kill their holders.
        while si < starts.len() && starts[si].0 <= t {
            let (at, node, _until) = starts[si];
            si += 1;
            down[node as usize] += 1;
            if let Some(job) = holder[node as usize] {
                // Kill: release every node the job held.
                let k = running
                    .iter()
                    .position(|r| r.job == job)
                    .expect("holder table tracks running jobs");
                let r = running.swap_remove(k);
                for &nd in &r.held {
                    holder[nd as usize] = None;
                }
                scheds[job].attempts.push(JobAttempt {
                    attempt: r.attempt,
                    start: r.start,
                    end: at,
                    killed_by: Some(node),
                });
                kills[job] += 1;
                if kills[job] > policy.max_retries {
                    scheds[job].outcome = JobOutcome::Abandoned;
                    terminal[job] = Some(at);
                    newly_terminal.push(job);
                } else {
                    queue.push((at + policy.requeue_delay(kills[job]), job, r.attempt + 1));
                }
            }
        }

        // Closed arrivals: terminal events release successors.
        if let ScheduleArrivals::Closed {
            concurrency,
            think_time,
        } = arrivals
        {
            newly_terminal.sort_unstable();
            for job in newly_terminal {
                let succ = job + (*concurrency).max(1);
                if succ < n && submits[succ].is_nan() {
                    let s = terminal[job].expect("terminal time recorded") + think_time;
                    submits[succ] = s;
                    queue.push((s, succ, 0));
                }
            }
        }

        // (d) Placement pass: FCFS over ready jobs by (ready, id); without
        // backfill the first non-fitting job blocks the rest of the queue.
        queue.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut qi = 0;
        while qi < queue.len() {
            let (ready, job, attempt) = queue[qi];
            if ready > t {
                break; // queue is (ready, id)-sorted; nothing later is ready
            }
            let want = demands[job].nodes as usize;
            let free: Vec<u32> = (0..cluster_nodes)
                .filter(|&nd| down[nd as usize] == 0 && holder[nd as usize].is_none())
                .take(want)
                .collect();
            if free.len() < want {
                if policy.backfill {
                    qi += 1; // flow around the head
                    continue;
                }
                break; // strict FCFS: the head blocks everyone behind it
            }
            for &nd in &free {
                holder[nd as usize] = Some(job);
            }
            running.push(Running {
                job,
                attempt,
                start: t,
                end: t + demands[job].est_runtime.max(0.0),
                held: free,
            });
            queue.remove(qi);
        }
    }

    // Record submits (closed processes may leave trailing NaNs only if a
    // predecessor was never terminal — impossible, the loop drains).
    for (i, s) in scheds.iter_mut().enumerate() {
        s.submit = submits[i];
        assert!(s.submit.is_finite(), "job {i} was never submitted");
        assert!(!s.attempts.is_empty(), "job {i} was never placed");
    }
    scheds
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(nodes: u32, rt: f64) -> JobDemand {
        JobDemand {
            nodes,
            est_runtime: rt,
        }
    }

    #[test]
    fn uncontended_jobs_start_at_submission() {
        let demands = [d(2, 10.0), d(2, 10.0), d(2, 10.0)];
        let submits = [0.0, 1.0, 2.0];
        let p = fcfs_schedule(16, &demands, &ScheduleArrivals::Open(&submits));
        assert_eq!(p[0].start, 0.0);
        assert_eq!(p[1].start, 1.0);
        assert_eq!(p[2].start, 2.0);
    }

    #[test]
    fn saturated_cluster_queues_fcfs() {
        // 4 nodes; each job takes all of them: strict serialization.
        let demands = [d(4, 5.0), d(4, 5.0), d(4, 5.0)];
        let submits = [0.0, 0.0, 0.0];
        let p = fcfs_schedule(4, &demands, &ScheduleArrivals::Open(&submits));
        assert_eq!(p[0].start, 0.0);
        assert_eq!(p[1].start, 5.0);
        assert_eq!(p[2].start, 10.0);
        assert!(
            p.windows(2).all(|w| w[1].start >= w[0].start),
            "admission order"
        );
    }

    #[test]
    fn no_backfill_small_job_waits_for_big_head() {
        // Job 1 wants the whole cluster and queues; job 2 would fit in the
        // leftover nodes but must not overtake it.
        let demands = [d(2, 10.0), d(4, 5.0), d(1, 1.0)];
        let submits = [0.0, 0.0, 0.0];
        let p = fcfs_schedule(4, &demands, &ScheduleArrivals::Open(&submits));
        assert_eq!(p[1].start, 10.0);
        assert!(p[2].start >= p[1].start, "no backfill past the queue head");
    }

    #[test]
    fn capacity_is_never_exceeded() {
        let demands: Vec<JobDemand> = (0..40)
            .map(|i| d(1 + (i % 3), 3.0 + i as f64 * 0.1))
            .collect();
        let submits: Vec<f64> = (0..40).map(|i| i as f64 * 0.5).collect();
        let cluster = 6u32;
        let p = fcfs_schedule(cluster, &demands, &ScheduleArrivals::Open(&submits));
        // Check occupancy at every start instant.
        for probe in &p {
            let t = probe.start;
            let used: u32 = p
                .iter()
                .zip(&demands)
                .filter(|(pl, _)| pl.start <= t && t < pl.end)
                .map(|(_, dm)| dm.nodes)
                .sum();
            assert!(used <= cluster, "{used} nodes used at t={t}");
        }
    }

    #[test]
    fn closed_loop_keeps_concurrency_bounded() {
        let demands: Vec<JobDemand> = (0..12).map(|_| d(1, 10.0)).collect();
        let p = fcfs_schedule(
            64,
            &demands,
            &ScheduleArrivals::Closed {
                concurrency: 3,
                think_time: 1.0,
            },
        );
        // First three at t=0; job 3 submits when job 0 ends (+1s think).
        assert_eq!(p[0].start, 0.0);
        assert_eq!(p[2].start, 0.0);
        assert_eq!(p[3].submit, 11.0);
        assert_eq!(p[3].start, 11.0);
        // At any start instant at most `concurrency` jobs are in flight.
        for probe in &p {
            let t = probe.start;
            let inflight = p.iter().filter(|pl| pl.start <= t && t < pl.end).count();
            assert!(inflight <= 3, "{inflight} jobs in flight at t={t}");
        }
    }

    #[test]
    fn schedule_is_deterministic() {
        let demands: Vec<JobDemand> = (0..30)
            .map(|i| d(1 + (i % 4), 2.0 + i as f64 * 0.3))
            .collect();
        let submits: Vec<f64> = (0..30)
            .map(|i| (i as f64 * 0.7) % 11.0 + i as f64 * 0.2)
            .collect();
        let a = fcfs_schedule(8, &demands, &ScheduleArrivals::Open(&submits));
        let b = fcfs_schedule(8, &demands, &ScheduleArrivals::Open(&submits));
        assert_eq!(a, b);
    }

    #[test]
    fn resilient_with_empty_plan_matches_fcfs_exactly() {
        let demands: Vec<JobDemand> = (0..25)
            .map(|i| d(1 + (i % 4), 2.0 + i as f64 * 0.3))
            .collect();
        let submits: Vec<f64> = (0..25).map(|i| i as f64 * 0.9).collect();
        let arrivals = ScheduleArrivals::Open(&submits);
        let legacy = fcfs_schedule(8, &demands, &arrivals);
        let plan = NodeFaultPlan::none();
        let res = resilient_schedule(8, &demands, &arrivals, &plan, &SchedPolicy::standard());
        let as_placements: Vec<Placement> = res.iter().map(JobSchedule::as_placement).collect();
        assert_eq!(legacy, as_placements);
        assert!(res
            .iter()
            .all(|s| s.outcome == JobOutcome::Completed && s.attempts.len() == 1));
    }

    #[test]
    fn outage_kills_and_requeue_completes_with_backoff() {
        // One 2-node job on a 2-node cluster; node 0 fails at t=4 for 10 s.
        let demands = [d(2, 10.0)];
        let submits = [0.0];
        let plan = NodeFaultPlan::none().with_outage(0, 4.0, 10.0);
        let pol = SchedPolicy::standard();
        let s = &resilient_schedule(2, &demands, &ScheduleArrivals::Open(&submits), &plan, &pol)[0];
        assert_eq!(s.outcome, JobOutcome::CompletedAfterRetry(1));
        assert_eq!(s.attempts.len(), 2);
        assert_eq!(s.attempts[0].killed_by, Some(0));
        assert_eq!(s.attempts[0].end, 4.0);
        // Requeued at 4 + 30 s backoff, but node 0 is down until 14; both
        // nodes are only free at max(34, 14) = 34.
        assert_eq!(s.attempts[1].start, 34.0);
        assert_eq!(s.attempts[1].end, 44.0);
        assert_eq!(s.attempts[1].killed_by, None);
        assert!((s.lost_node_secs(2) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn retry_budget_exhaustion_abandons_the_job() {
        // The node the job needs fails every time it runs: first kill at
        // t=10; the requeue (30 s backoff → restart at 40) is killed again
        // at t=50, exhausting a budget of one retry.
        let demands = [d(1, 100.0)];
        let submits = [0.0];
        let plan = NodeFaultPlan::none()
            .with_outage(0, 10.0, 1.0)
            .with_outage(0, 50.0, 1.0);
        let pol = SchedPolicy {
            max_retries: 1,
            ..SchedPolicy::standard()
        };
        let s = &resilient_schedule(1, &demands, &ScheduleArrivals::Open(&submits), &plan, &pol)[0];
        assert_eq!(s.outcome, JobOutcome::Abandoned);
        assert_eq!(s.attempts.len(), 2, "first run + one retry, then abandoned");
        assert!(s.attempts.iter().all(|a| a.killed_by == Some(0)));
    }

    #[test]
    fn pool_shrinks_while_nodes_are_down() {
        // 2 nodes; node 1 is down [0, 50): two 1-node jobs serialize on
        // node 0 instead of running concurrently.
        let demands = [d(1, 10.0), d(1, 10.0)];
        let submits = [0.0, 0.0];
        let plan = NodeFaultPlan::none().with_outage(1, 0.0, 50.0);
        let pol = SchedPolicy::standard();
        let s = resilient_schedule(2, &demands, &ScheduleArrivals::Open(&submits), &plan, &pol);
        assert_eq!(s[0].attempts[0].start, 0.0);
        assert_eq!(
            s[1].attempts[0].start, 10.0,
            "second job waits for the only up node"
        );
        assert!(s.iter().all(|j| j.outcome == JobOutcome::Completed));
    }

    #[test]
    fn backfill_lets_small_jobs_flow_around_a_blocked_head() {
        // 4 nodes. Job 0 holds all 4 until t=10; job 1 (wants 4) blocks;
        // job 2 (wants 0 free... 1 node) — without backfill it waits behind
        // job 1, with backfill it cannot start either (0 free). Use a
        // 3-node head instead: job 0 takes 3, job 1 wants 3 (blocked),
        // job 2 wants 1 and can backfill into the free node.
        let demands = [d(3, 10.0), d(3, 5.0), d(1, 2.0)];
        let submits = [0.0, 1.0, 2.0];
        let plan = NodeFaultPlan::none();
        let fcfs_pol = SchedPolicy {
            backfill: false,
            ..SchedPolicy::standard()
        };
        let bf_pol = SchedPolicy {
            backfill: true,
            ..SchedPolicy::standard()
        };
        let arrivals = ScheduleArrivals::Open(&submits);
        let strict = resilient_schedule(4, &demands, &arrivals, &plan, &fcfs_pol);
        let backfilled = resilient_schedule(4, &demands, &arrivals, &plan, &bf_pol);
        assert_eq!(
            strict[2].attempts[0].start, 10.0,
            "strict: waits behind the 3-node head"
        );
        assert_eq!(
            backfilled[2].attempts[0].start, 2.0,
            "backfill: into the free node"
        );
        // The head itself is not delayed by the backfilled job.
        assert_eq!(strict[1].attempts[0].start, backfilled[1].attempts[0].start);
    }

    #[test]
    fn closed_arrivals_release_successors_on_terminal_events() {
        let demands: Vec<JobDemand> = (0..6).map(|_| d(1, 10.0)).collect();
        let plan = NodeFaultPlan::none().with_outage(0, 1e9, 1.0); // far-future: active plan, no effect
        let pol = SchedPolicy::standard();
        let s = resilient_schedule(
            4,
            &demands,
            &ScheduleArrivals::Closed {
                concurrency: 2,
                think_time: 1.0,
            },
            &plan,
            &pol,
        );
        assert_eq!(s[0].submit, 0.0);
        assert_eq!(s[1].submit, 0.0);
        assert_eq!(s[2].submit, 11.0);
        assert_eq!(s[3].submit, 11.0);
        assert_eq!(s[4].submit, 22.0);
        assert!(s.iter().all(|j| j.outcome == JobOutcome::Completed));
    }

    #[test]
    fn requeue_delay_is_monotone_and_capped() {
        let pol = SchedPolicy::standard();
        let mut prev = 0.0;
        for k in 1..20 {
            let d = pol.requeue_delay(k);
            assert!(d >= prev, "backoff must be non-decreasing");
            assert!(d <= pol.max_backoff);
            prev = d;
        }
        assert_eq!(pol.requeue_delay(1), 30.0);
        assert_eq!(pol.requeue_delay(2), 60.0);
        assert_eq!(pol.requeue_delay(20), 480.0);
    }
}
