//! Fleet-level failure domains: whole-node outages with repair times.
//!
//! PR 3/5 gave individual jobs fault and crash planes; this module gives
//! the *fleet* one. A [`NodeFaultPlan`] is a timeline of node outages on
//! the shared cluster, each with a repair instant: while a node is down it
//! leaves the schedulable pool (shrinking what the self-healing scheduler
//! can place onto, see [`super::scheduler::resilient_schedule`]), every
//! job holding the node at the outage instant is killed mid-run, and —
//! because the fleet's storage is rack-co-located with its nodes — the
//! shared PFS serves with proportionally less hardware
//! ([`storage_sim::LoadWindow::capacity`]).
//!
//! # Determinism contract
//!
//! A plan is **pure data**: times are f64 seconds on the fleet clock, the
//! outage list is normalized (sorted by `(at, node)`, zero-length outages
//! dropped) at construction, and every query is a sequential scan. Seeded
//! plans are drawn by [`NodeFaultProfile::draw`] from the manifest's
//! *fourth* split RNG stream — pick/seed/gap/fault, in that order — so
//! turning node faults on or off can never shift an existing job's
//! template, seed, or submit time (pinned by
//! `vani_rt::rng::tests::fourth_split_stream_is_pinned`). An empty plan is
//! bit-identical to the pre-failure-domain fleet everywhere.

use vani_rt::rng::Rng;
use vani_rt::{FromJson, Json, JsonError, ToJson};

/// One whole-node outage on the fleet clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeOutage {
    /// Node id in `[0, cluster_nodes)`.
    pub node: u32,
    /// Failure instant, seconds.
    pub at: f64,
    /// Repair instant, seconds (exclusive; the node is schedulable again
    /// at `until`). Always `> at` after normalization.
    pub until: f64,
}

/// A deterministic timeline of node outages. Pure data; see module docs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NodeFaultPlan {
    /// Outages, sorted by `(at, node)`.
    pub outages: Vec<NodeOutage>,
}

impl NodeFaultPlan {
    /// A perfectly healthy fleet.
    pub fn none() -> Self {
        NodeFaultPlan::default()
    }

    /// Whether the plan carries no outages at all.
    pub fn is_empty(&self) -> bool {
        self.outages.is_empty()
    }

    /// Add one outage (builder style): `node` fails at `at` and is
    /// repaired `repair` seconds later. Non-positive or non-finite repair
    /// times are dropped — a zero-length outage kills nothing and blocks
    /// nothing, so representing it would only perturb event ordering.
    pub fn with_outage(mut self, node: u32, at: f64, repair: f64) -> Self {
        if at.is_finite() && repair.is_finite() && at >= 0.0 && repair > 0.0 {
            self.outages.push(NodeOutage {
                node,
                at,
                until: at + repair,
            });
            self.normalize();
        }
        self
    }

    /// Restore the sorted-by-`(at, node)` invariant.
    fn normalize(&mut self) {
        self.outages.sort_by(|a, b| {
            a.at.total_cmp(&b.at)
                .then(a.node.cmp(&b.node))
                .then(a.until.total_cmp(&b.until))
        });
    }

    /// How many *distinct* nodes are down at instant `t` (overlapping
    /// outages of the same node count once).
    pub fn down_count(&self, t: f64) -> u32 {
        let mut down: Vec<u32> = self
            .outages
            .iter()
            .filter(|o| o.at <= t && t < o.until)
            .map(|o| o.node)
            .collect();
        down.sort_unstable();
        down.dedup();
        down.len() as u32
    }

    /// Whether `node` is schedulable at instant `t`.
    pub fn node_up(&self, node: u32, t: f64) -> bool {
        !self
            .outages
            .iter()
            .any(|o| o.node == node && o.at <= t && t < o.until)
    }

    /// Every instant the up/down state of some node can change, sorted
    /// ascending and deduplicated — the capacity breakpoints the degraded
    /// interference builder sweeps.
    pub fn boundaries(&self) -> Vec<f64> {
        let mut ts: Vec<f64> = Vec::with_capacity(self.outages.len() * 2);
        for o in &self.outages {
            ts.push(o.at);
            ts.push(o.until);
        }
        ts.sort_by(f64::total_cmp);
        ts.dedup();
        ts
    }

    /// Total node-hours of capacity the outages remove (per-outage
    /// durations; overlapping outages of one node double-charge, matching
    /// how repair crews bill).
    pub fn node_hours_down(&self) -> f64 {
        // `+ 0.0` normalizes the empty sum's negative zero so the
        // rendered manifest never shows `-0.0000 node-hours`.
        self.outages
            .iter()
            .map(|o| (o.until - o.at) / 3600.0)
            .sum::<f64>()
            + 0.0
    }

    /// Stable plain-text rendering, one line per outage (digested into the
    /// fleet manifest when non-empty).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for o in &self.outages {
            out.push_str(&format!(
                "node {:>4} down {:>12.3} s .. {:>12.3} s ({:.3} s repair)\n",
                o.node,
                o.at,
                o.until,
                o.until - o.at
            ));
        }
        out
    }
}

impl ToJson for NodeOutage {
    fn to_json(&self) -> Json {
        Json::obj([
            ("node", Json::Int(self.node as i128)),
            ("at", Json::Float(self.at)),
            ("until", Json::Float(self.until)),
        ])
    }
}

impl FromJson for NodeOutage {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(NodeOutage {
            node: j.decode_field("node")?,
            at: j.decode_field("at")?,
            until: j.decode_field("until")?,
        })
    }
}

impl ToJson for NodeFaultPlan {
    fn to_json(&self) -> Json {
        Json::obj([("outages", self.outages.to_json())])
    }
}

impl FromJson for NodeFaultPlan {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        let mut plan = NodeFaultPlan {
            outages: j.decode_field("outages")?,
        };
        plan.normalize();
        plan.outages.retain(|o| o.until > o.at);
        Ok(plan)
    }
}

/// A seeded outage generator: exponential time-between-failures across the
/// whole fleet, uniform victim pick, Weibull repair times (the classic
/// repair-crew distribution — shape < 1 gives the long tail real fleets
/// see). Drawing consumes only the manifest's fourth split stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeFaultProfile {
    /// Mean seconds between node failures, fleet-wide.
    pub mean_time_between_failures: f64,
    /// Weibull scale of the repair time, seconds.
    pub mean_repair: f64,
    /// Weibull shape of the repair time (1.0 = exponential repairs).
    pub repair_shape: f64,
    /// Outages to draw.
    pub outages: usize,
}

impl NodeFaultProfile {
    /// The standard degraded fleet `repro -- fleet-sweep --node-faults`
    /// runs: failures arriving on the same order as job inter-arrivals so
    /// a busy fleet sees several, with heavy-tailed half-hour-scale
    /// repairs (scaled alongside the fleet clock by `scale`).
    pub fn standard(scale: f64) -> Self {
        NodeFaultProfile {
            mean_time_between_failures: 400.0 * scale,
            mean_repair: 1800.0 * scale,
            repair_shape: 0.7,
            outages: 6,
        }
    }

    /// Draw a concrete plan. One sequential pass over `rng` (the fourth
    /// manifest stream), so the same profile + seed always yields the same
    /// timeline regardless of worker count or fleet size.
    pub fn draw(&self, rng: &mut Rng, cluster_nodes: u32) -> NodeFaultPlan {
        if cluster_nodes == 0 || self.outages == 0 {
            return NodeFaultPlan::none();
        }
        let rate = if self.mean_time_between_failures > 0.0 {
            1.0 / self.mean_time_between_failures
        } else {
            0.0
        };
        let mut plan = NodeFaultPlan::none();
        let mut clock = 0.0f64;
        for _ in 0..self.outages {
            clock += rng.exponential(rate);
            let node = rng.uniform_u64(0, cluster_nodes as u64) as u32;
            let repair = rng.weibull(self.repair_shape, self.mean_repair).max(1.0);
            plan = plan.with_outage(node, clock, repair);
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty_and_all_up() {
        let p = NodeFaultPlan::none();
        assert!(p.is_empty());
        assert_eq!(p.down_count(5.0), 0);
        assert!(p.node_up(3, 5.0));
        assert!(p.boundaries().is_empty());
        assert_eq!(p.node_hours_down(), 0.0);
        assert_eq!(p.render(), "");
    }

    #[test]
    fn outage_window_is_half_open() {
        let p = NodeFaultPlan::none().with_outage(2, 10.0, 5.0);
        assert!(p.node_up(2, 9.999));
        assert!(!p.node_up(2, 10.0));
        assert!(!p.node_up(2, 14.999));
        assert!(p.node_up(2, 15.0));
        assert!(p.node_up(3, 12.0));
        assert_eq!(p.down_count(12.0), 1);
        assert_eq!(p.boundaries(), vec![10.0, 15.0]);
    }

    #[test]
    fn overlapping_outages_of_one_node_count_once() {
        let p = NodeFaultPlan::none()
            .with_outage(1, 0.0, 10.0)
            .with_outage(1, 5.0, 10.0);
        assert_eq!(p.down_count(7.0), 1);
        assert!(!p.node_up(1, 12.0));
        assert!(p.node_up(1, 15.0));
        // But node-hours double-charge by construction.
        assert!((p.node_hours_down() - 20.0 / 3600.0).abs() < 1e-12);
    }

    #[test]
    fn zero_length_and_invalid_outages_are_dropped() {
        let p = NodeFaultPlan::none()
            .with_outage(0, 5.0, 0.0)
            .with_outage(1, f64::NAN, 3.0)
            .with_outage(2, 5.0, f64::INFINITY);
        assert!(p.is_empty());
    }

    #[test]
    fn outages_normalize_to_time_order() {
        let p = NodeFaultPlan::none()
            .with_outage(3, 20.0, 1.0)
            .with_outage(1, 5.0, 1.0);
        assert_eq!(p.outages[0].node, 1);
        assert_eq!(p.outages[1].node, 3);
    }

    #[test]
    fn json_round_trip_preserves_plan() {
        let p = NodeFaultPlan::none()
            .with_outage(0, 1.5, 2.5)
            .with_outage(7, 9.0, 100.0);
        let back = NodeFaultPlan::from_json(&p.to_json()).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn profile_draw_is_deterministic_and_bounded() {
        let prof = NodeFaultProfile::standard(1.0);
        let a = prof.draw(&mut Rng::new(99), 16);
        let b = prof.draw(&mut Rng::new(99), 16);
        assert_eq!(a, b);
        assert_eq!(a.outages.len(), prof.outages);
        for o in &a.outages {
            assert!(o.node < 16);
            assert!(o.until > o.at && o.at >= 0.0);
        }
        // A different seed draws a different timeline.
        assert_ne!(a, prof.draw(&mut Rng::new(100), 16));
    }
}
