//! Multi-tenant datacenter mode: a shared-PFS job scheduler plus
//! fleet-scale statistical characterization.
//!
//! The paper characterizes each exemplar workload on a *dedicated* machine.
//! Production clusters are nothing like that: many heterogeneous jobs run
//! concurrently and contend for the same NSD data servers and MDS metadata
//! servers. This module adds that missing regime:
//!
//! * [`arrival`] — seeded open (exponential / lognormal inter-arrival) and
//!   closed (fixed concurrency + think time) arrival processes;
//! * [`scheduler`] — a deterministic FCFS scheduler placing jobs onto a
//!   fixed pool of cluster nodes, in strict admission order — plus the
//!   self-healing [`scheduler::resilient_schedule`], which requeues jobs
//!   killed by node outages with retry budgets, exponential backoff, and
//!   opt-in backfill;
//! * [`outage`] — fleet-level failure domains: seeded [`NodeFaultPlan`]
//!   timelines of whole-node outages with repair times, drawn from the
//!   manifest's fourth split RNG stream so existing job seeds never
//!   shift;
//! * [`contention`] — the mean-field contention model: each job's
//!   neighbors become a piecewise-constant
//!   [`storage_sim::InterferenceSchedule`] of competing data/metadata load
//!   installed into the job's own PFS simulation;
//! * [`fleet`] — the fleet sweep: manifest generation (workload mix,
//!   variants, seeds, arrivals), dedicated profile runs, scheduling,
//!   interference construction, and the job fan-out through the
//!   scenario-parallel [`crate::sweep`] driver;
//! * [`stats`] — IO500-style fleet reports: per-attribute p50/p90/p99
//!   distributions, cross-attribute Pearson correlations, and the
//!   noisy-neighbor slowdown-vs-dedicated table.
//!
//! # Determinism contract
//!
//! The fleet manifest is generated sequentially from the fleet seed before
//! any simulation starts; profile and job fan-outs go through
//! [`crate::sweep::ScenarioSet`], which merges results in registration
//! order; and every post-processing reduction (scheduling, interference
//! windows, quantiles, correlations) is a sequential pass in job-id order.
//! The rendered report is therefore **byte-identical at any worker
//! count**, and a fleet whose schedule produces no overlap (a single
//! tenant) installs empty interference schedules, which the PFS treats as
//! bit-identical to a dedicated run.

pub mod arrival;
pub mod contention;
pub mod fleet;
pub mod outage;
pub mod scheduler;
pub mod stats;

pub use arrival::{ArrivalProcess, InterArrival};
pub use contention::TenantDemand;
pub use fleet::{
    build_manifest, fleet_sweep, parse_workload, FleetConfig, FleetManifest, JobRecord,
    JobTemplate, JobVariant, ManifestJob, NodeFaultSpec, SpillSpec, KNOWN_WORKLOADS,
};
pub use outage::{NodeFaultPlan, NodeFaultProfile, NodeOutage};
pub use scheduler::{
    fcfs_schedule, resilient_schedule, JobAttempt, JobDemand, JobOutcome, JobSchedule, Placement,
    SchedPolicy, ScheduleArrivals,
};
pub use stats::{FleetReport, ProfileSummary, SpillFleetStats};

/// A fleet configuration that cannot be run. Surfaced as a typed error —
/// never a panic — so `repro -- fleet-sweep` can fail fast with a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetError {
    /// A job template references a workload id the suite does not know.
    UnknownWorkload(String),
    /// A job template asks for a variant the workload cannot run (crashy
    /// variants need checkpoint/restart support).
    UnsupportedVariant {
        /// The workload id.
        workload: String,
        /// The unsupported variant name.
        variant: String,
    },
    /// The workload mix is empty or has zero total weight.
    EmptyMix,
    /// A job needs more nodes than the shared cluster has.
    JobTooLarge {
        /// The workload id.
        workload: String,
        /// Nodes the job needs at the configured scale.
        nodes: u32,
        /// Nodes the shared cluster has.
        cluster_nodes: u32,
    },
    /// A `--jobs` argument that is not a positive integer.
    InvalidJobs {
        /// The argument as the user typed it.
        arg: String,
    },
    /// A `--spill` directory that does not exist, is not a directory, or
    /// is not writable.
    InvalidSpillDir {
        /// The directory as the user typed it.
        dir: String,
        /// Why it cannot be used.
        detail: String,
    },
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::UnknownWorkload(w) => {
                write!(
                    f,
                    "unknown workload `{w}` (known: {})",
                    fleet::KNOWN_WORKLOADS.join(", ")
                )
            }
            FleetError::UnsupportedVariant { workload, variant } => {
                write!(
                    f,
                    "workload `{workload}` does not support the `{variant}` variant"
                )
            }
            FleetError::EmptyMix => write!(f, "fleet mix is empty (or has zero total weight)"),
            FleetError::JobTooLarge {
                workload,
                nodes,
                cluster_nodes,
            } => write!(
                f,
                "job `{workload}` needs {nodes} nodes but the cluster has {cluster_nodes}"
            ),
            FleetError::InvalidJobs { arg } => {
                write!(
                    f,
                    "invalid --jobs value `{arg}`: expected a positive integer"
                )
            }
            FleetError::InvalidSpillDir { dir, detail } => {
                write!(f, "invalid --spill directory `{dir}`: {detail}")
            }
        }
    }
}

impl std::error::Error for FleetError {}
