//! The fleet sweep: thousands of heterogeneous jobs on one shared PFS.
//!
//! A fleet run proceeds in deterministic waves:
//!
//! 1. **Manifest** — a single sequential pass over the fleet seed draws
//!    each job's template (weighted pick from the mix), its private seed,
//!    and — for open arrival processes — its submission time. The manifest
//!    exists before any simulation starts, so it cannot depend on worker
//!    count or scheduling order.
//! 2. **Profiles** — every distinct `(workload, variant)` combination in
//!    the mix runs once on a dedicated machine through the
//!    scenario-parallel driver. Profiles provide the scheduler's runtime
//!    estimates, the contention model's demand fractions, and the
//!    noisy-neighbor table's dedicated baselines. Crashy profiles run in a
//!    second wave because their crash instant is anchored to the baseline
//!    profile's makespan (the [`crate::crashsweep`] idiom).
//! 3. **Schedule** — FCFS placement of the whole manifest onto the shared
//!    cluster, then per-job interference schedules from the overlaps.
//! 4. **Jobs** — every job simulates independently (scenario-parallel)
//!    with its variant's fault plan and its interference schedule
//!    installed, returning a compact [`JobRecord`] (the trace is dropped
//!    inside the closure, so a 1000-job fleet does not hold 1000 traces).
//!
//! Every wave merges results in registration order and every reduction is
//! a sequential pass in job-id order — see the module docs of
//! [`super`] for the full determinism argument.

use super::arrival::{ArrivalProcess, InterArrival};
use super::contention::{interference_for, interference_for_degraded, TenantDemand};
use super::outage::{NodeFaultPlan, NodeFaultProfile};
use super::scheduler::{
    fcfs_schedule, resilient_schedule, JobDemand, JobSchedule, SchedPolicy, ScheduleArrivals,
};
use super::stats::{FleetReport, ProfileSummary};
use super::FleetError;
use crate::analyzer::Analysis;
use crate::sweep::{retry_seed, Driver, ScenarioSet};
use exemplar_workloads::{
    cm1, cosmoflow, hacc, ior, jag, montage, montage_pegasus, WorkloadKind, WorkloadRun,
};
use recorder_sim::spill::SpillFaultPlan;
use sim_core::{Dur, SimTime};
use std::path::{Path, PathBuf};
use storage_sim::{FaultPlan, GpfsConfig, InterferenceSchedule};
use vani_rt::rng::Rng;

/// Workload ids the fleet mix may reference.
pub const KNOWN_WORKLOADS: [&str; 7] = [
    "cm1",
    "hacc",
    "cosmoflow",
    "jag",
    "montage-mpi",
    "montage-pegasus",
    "ior",
];

/// Resolve a mix workload id, failing fast with a typed error.
pub fn parse_workload(id: &str) -> Result<WorkloadKind, FleetError> {
    match id {
        "cm1" => Ok(WorkloadKind::Cm1),
        "hacc" => Ok(WorkloadKind::Hacc),
        "cosmoflow" => Ok(WorkloadKind::Cosmoflow),
        "jag" => Ok(WorkloadKind::Jag),
        "montage-mpi" => Ok(WorkloadKind::MontageMpi),
        "montage-pegasus" => Ok(WorkloadKind::MontagePegasus),
        "ior" => Ok(WorkloadKind::Ior),
        _ => Err(FleetError::UnknownWorkload(id.to_string())),
    }
}

fn workload_id(kind: WorkloadKind) -> &'static str {
    match kind {
        WorkloadKind::Cm1 => "cm1",
        WorkloadKind::Hacc => "hacc",
        WorkloadKind::Cosmoflow => "cosmoflow",
        WorkloadKind::Jag => "jag",
        WorkloadKind::MontageMpi => "montage-mpi",
        WorkloadKind::MontagePegasus => "montage-pegasus",
        WorkloadKind::Ior => "ior",
    }
}

/// How a fleet job perturbs its workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum JobVariant {
    /// The workload exactly as the paper ran it.
    Baseline,
    /// A degraded-PFS tenant: constant MDS (4x) and NSD (1.5x) brownouts
    /// for the whole run — the kind of sick-but-alive job real fleets
    /// carry. Brownouts only; transient error injection would require
    /// retry middleware the exemplar skeletons do not mount.
    Faulted,
    /// A job that crashes halfway through its dedicated makespan and
    /// restarts from its last durable checkpoint. Only workloads wired to
    /// checkpoint/restart recovery (CM1, CosmoFlow) support this.
    Crashy,
}

impl JobVariant {
    /// Stable name for manifests, scenario ids, and reports.
    pub fn name(&self) -> &'static str {
        match self {
            JobVariant::Baseline => "baseline",
            JobVariant::Faulted => "faulted",
            JobVariant::Crashy => "crashy",
        }
    }
}

/// Whether `kind` can run the crashy variant (needs recovery support).
fn supports_crashy(kind: WorkloadKind) -> bool {
    matches!(kind, WorkloadKind::Cm1 | WorkloadKind::Cosmoflow)
}

/// One entry of the fleet's workload mix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobTemplate {
    /// Workload id (see [`KNOWN_WORKLOADS`]).
    pub workload: String,
    /// Variant every job drawn from this template runs.
    pub variant: JobVariant,
    /// Relative draw weight (0 disables the template).
    pub weight: u32,
}

impl JobTemplate {
    /// Convenience constructor.
    pub fn new(workload: &str, variant: JobVariant, weight: u32) -> Self {
        JobTemplate {
            workload: workload.to_string(),
            variant,
            weight,
        }
    }
}

/// How a fleet run's node failure domain is specified.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeFaultSpec {
    /// A perfectly healthy node pool (the default; bit-identical to the
    /// pre-failure-domain fleet everywhere).
    None,
    /// Draw a seeded outage timeline from the manifest's fourth split RNG
    /// stream at manifest time.
    Profile(NodeFaultProfile),
    /// Use this exact timeline.
    Plan(NodeFaultPlan),
}

/// Where — and under what injected-fault plan — fleet jobs spill their
/// captured traces. With a spec installed, every simulated job streams its
/// trace into a crash-consistent segment log (`job-NNNNN.vsp3` under
/// `dir`), recovers it, and analyzes the recovered prefix straight off
/// disk, so a 10⁵-job sweep's peak resident trace bytes stay at the
/// chunk-ring bound regardless of trace length.
#[derive(Debug, Clone, PartialEq)]
pub struct SpillSpec {
    /// Directory the per-job segment logs are written into.
    pub dir: PathBuf,
    /// Fault plan installed into every job's spill writer —
    /// [`SpillFaultPlan::none`] for a clean durable sweep; armed plans
    /// drive the torture-test fleets.
    pub fault: SpillFaultPlan,
}

impl SpillSpec {
    /// A clean (fault-free) spill into `dir`.
    pub fn clean(dir: &Path) -> Self {
        SpillSpec {
            dir: dir.to_path_buf(),
            fault: SpillFaultPlan::none(),
        }
    }
}

/// Everything that defines a fleet run.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Jobs in the fleet.
    pub n_jobs: usize,
    /// Scale factor every job runs at (1.0 = paper scale).
    pub scale: f64,
    /// Fleet seed: manifests, scenario seeds, everything derives from it.
    pub seed: u64,
    /// Nodes in the shared cluster the scheduler places onto.
    pub cluster_nodes: u32,
    /// The shared PFS's capacity relative to the full Lassen system, used
    /// to turn profile demand into capacity fractions. Defaults to the job
    /// scale so a scaled-down fleet contends against a proportionally
    /// scaled-down datacenter.
    pub pfs_capacity_scale: f64,
    /// How jobs enter the system.
    pub arrival: ArrivalProcess,
    /// Weighted workload mix jobs are drawn from.
    pub mix: Vec<JobTemplate>,
    /// The fleet's node failure domain.
    pub node_faults: NodeFaultSpec,
    /// The self-healing scheduler's policy (retry budgets, backoff,
    /// backfill). With [`NodeFaultSpec::None`] and backfill off the
    /// scheduler is the legacy FCFS one, bit for bit.
    pub sched: SchedPolicy,
    /// Spill-to-disk capture (`None` = in-memory streaming analysis,
    /// bit-identical to the pre-spill fleet).
    pub spill: Option<SpillSpec>,
}

impl FleetConfig {
    /// The standard heterogeneous fleet: every exemplar workload at weight
    /// 3, its brownout-degraded twin at weight 1, and crashy CM1/CosmoFlow
    /// at weight 1 — jobs arriving as an open Poisson stream dense enough
    /// to keep the cluster contended.
    pub fn standard(n_jobs: usize, scale: f64, seed: u64) -> Self {
        let mut mix = Vec::new();
        for w in KNOWN_WORKLOADS {
            mix.push(JobTemplate::new(w, JobVariant::Baseline, 3));
            mix.push(JobTemplate::new(w, JobVariant::Faulted, 1));
        }
        mix.push(JobTemplate::new("cm1", JobVariant::Crashy, 1));
        mix.push(JobTemplate::new("cosmoflow", JobVariant::Crashy, 1));
        let widest = KNOWN_WORKLOADS
            .iter()
            .map(|w| nodes_for(parse_workload(w).expect("known"), scale))
            .max()
            .unwrap_or(1);
        FleetConfig {
            n_jobs,
            scale,
            seed,
            // Room for a handful of concurrent tenants, small enough that
            // the queue stays busy and neighbors actually overlap.
            cluster_nodes: widest * 4,
            pfs_capacity_scale: scale,
            arrival: ArrivalProcess::Open {
                mean_interarrival: 120.0 * scale,
                dist: InterArrival::Exponential,
            },
            mix,
            node_faults: NodeFaultSpec::None,
            sched: SchedPolicy::standard(),
            spill: None,
        }
    }

    /// The standard fleet with the standard degraded-mode failure domain
    /// (what `repro -- fleet-sweep --node-faults` runs).
    pub fn standard_with_node_faults(n_jobs: usize, scale: f64, seed: u64) -> Self {
        let mut cfg = FleetConfig::standard(n_jobs, scale, seed);
        cfg.node_faults = NodeFaultSpec::Profile(NodeFaultProfile::standard(scale));
        cfg
    }
}

/// One admitted job, as recorded in the manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestJob {
    /// Job id = admission position.
    pub id: usize,
    /// Workload id from [`KNOWN_WORKLOADS`].
    pub workload: String,
    /// Variant the job runs.
    pub variant: JobVariant,
    /// The job's private simulation seed.
    pub seed: u64,
    /// Submission time, seconds (0 for closed arrival processes, whose
    /// submissions derive from completions inside the scheduler).
    pub submit: f64,
    /// Nodes the job occupies.
    pub nodes: u32,
}

/// The full job manifest: drawn before any simulation starts.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetManifest {
    /// Jobs in admission order.
    pub jobs: Vec<ManifestJob>,
    /// Arrival-process description (for the report header).
    pub arrival: String,
    /// Cluster size the manifest was validated against.
    pub cluster_nodes: u32,
    /// The node outage timeline the fleet runs under (empty = healthy).
    pub node_faults: NodeFaultPlan,
}

impl FleetManifest {
    /// Render the manifest as stable plain text (pinned by tests and
    /// digested into the fleet report). The outage section appears only
    /// when the plan is non-empty, so healthy manifests render — and
    /// digest — byte-identically to the pre-failure-domain fleet.
    pub fn render(&self) -> String {
        let mut out = format!(
            "fleet manifest: {} jobs | arrival {} | cluster {} nodes\n",
            self.jobs.len(),
            self.arrival,
            self.cluster_nodes
        );
        out.push_str(
            "   id | workload        | variant  | seed             | submit (s) | nodes\n",
        );
        for j in &self.jobs {
            out.push_str(&format!(
                "{:>5} | {:<15} | {:<8} | {:016x} | {:>10.3} | {:>5}\n",
                j.id,
                j.workload,
                j.variant.name(),
                j.seed,
                j.submit,
                j.nodes
            ));
        }
        if !self.node_faults.is_empty() {
            out.push_str(&format!(
                "node fault plan: {} outages, {:.4} node-hours down\n",
                self.node_faults.outages.len(),
                self.node_faults.node_hours_down()
            ));
            out.push_str(&self.node_faults.render());
        }
        out
    }
}

/// Nodes `kind` occupies at `scale` (from its scaled parameter set).
fn nodes_for(kind: WorkloadKind, scale: f64) -> u32 {
    match kind {
        WorkloadKind::Cm1 => cm1::Cm1Params::scaled(scale).nodes,
        WorkloadKind::Hacc => hacc::HaccParams::scaled(scale).nodes,
        WorkloadKind::Cosmoflow => cosmoflow::CosmoflowParams::scaled(scale).nodes,
        WorkloadKind::Jag => jag::JagParams::scaled(scale).nodes,
        WorkloadKind::MontageMpi => montage::MontageParams::scaled(scale).nodes,
        WorkloadKind::MontagePegasus => montage_pegasus::PegasusParams::scaled(scale).nodes,
        WorkloadKind::Ior => ior::IorParams::scaled(scale).nodes,
    }
}

/// Validate the mix and draw the manifest: one sequential pass over the
/// fleet seed, in job-id order. Worker-count independent by construction.
pub fn build_manifest(cfg: &FleetConfig) -> Result<FleetManifest, FleetError> {
    let live: Vec<&JobTemplate> = cfg.mix.iter().filter(|t| t.weight > 0).collect();
    let total_weight: u64 = live.iter().map(|t| t.weight as u64).sum();
    if total_weight == 0 {
        return Err(FleetError::EmptyMix);
    }
    for t in &live {
        let kind = parse_workload(&t.workload)?;
        if t.variant == JobVariant::Crashy && !supports_crashy(kind) {
            return Err(FleetError::UnsupportedVariant {
                workload: t.workload.clone(),
                variant: t.variant.name().to_string(),
            });
        }
        let nodes = nodes_for(kind, cfg.scale);
        if nodes > cfg.cluster_nodes {
            return Err(FleetError::JobTooLarge {
                workload: t.workload.clone(),
                nodes,
                cluster_nodes: cfg.cluster_nodes,
            });
        }
    }
    // Four independent streams so adding a job never shifts another job's
    // seed relative to its template pick, and turning node faults on or
    // off never shifts any job stream: the fault stream is split fourth,
    // *unconditionally*, even when the plan is empty (pinned by
    // `vani_rt::rng::tests::fourth_split_stream_is_pinned`).
    let mut master = Rng::new(cfg.seed);
    let mut pick_rng = master.split();
    let mut seed_rng = master.split();
    let mut gap_rng = master.split();
    let mut fault_rng = master.split();
    let node_faults = match &cfg.node_faults {
        NodeFaultSpec::None => NodeFaultPlan::none(),
        NodeFaultSpec::Plan(p) => p.clone(),
        NodeFaultSpec::Profile(prof) => prof.draw(&mut fault_rng, cfg.cluster_nodes),
    };
    let mut jobs = Vec::with_capacity(cfg.n_jobs);
    let mut clock = 0.0f64;
    for id in 0..cfg.n_jobs {
        let mut w = pick_rng.uniform_u64(0, total_weight);
        let tpl = live
            .iter()
            .find(|t| {
                if w < t.weight as u64 {
                    true
                } else {
                    w -= t.weight as u64;
                    false
                }
            })
            .expect("weighted pick is within total weight");
        let kind = parse_workload(&tpl.workload).expect("validated above");
        let submit = match &cfg.arrival {
            ArrivalProcess::Open {
                mean_interarrival,
                dist,
            } => {
                clock += dist.sample(*mean_interarrival, &mut gap_rng);
                clock
            }
            ArrivalProcess::Closed { .. } => 0.0,
        };
        jobs.push(ManifestJob {
            id,
            workload: tpl.workload.clone(),
            variant: tpl.variant,
            seed: seed_rng.split().next_u64(),
            submit,
            nodes: nodes_for(kind, cfg.scale),
        });
    }
    Ok(FleetManifest {
        jobs,
        arrival: cfg.arrival.describe(),
        cluster_nodes: cfg.cluster_nodes,
        node_faults,
    })
}

/// The constant degraded-PFS plan [`JobVariant::Faulted`] jobs run under.
fn faulted_plan() -> FaultPlan {
    let forever = SimTime::from_secs(30 * 24 * 3600);
    FaultPlan::none()
        .with_nsd_brownout(SimTime::ZERO, forever, 1.5)
        .with_mds_brownout(SimTime::ZERO, forever, 4.0)
}

/// The crash plan for a [`JobVariant::Crashy`] job: one rank-0 kill
/// halfway through the workload's *baseline* dedicated makespan.
fn crashy_plan(baseline: Dur) -> FaultPlan {
    FaultPlan::none().with_rank_crash(0, SimTime::from_nanos(baseline.as_nanos() / 2))
}

/// Run one job: the workload's scaled parameter set with the given fault
/// plan and interference schedule installed.
pub(crate) fn run_job(
    kind: WorkloadKind,
    scale: f64,
    seed: u64,
    faults: FaultPlan,
    interference: InterferenceSchedule,
) -> WorkloadRun {
    match kind {
        WorkloadKind::Cm1 => {
            let mut p = cm1::Cm1Params::scaled(scale);
            p.faults = faults;
            p.interference = interference;
            cm1::run_with(p, scale, seed)
        }
        WorkloadKind::Hacc => {
            let mut p = hacc::HaccParams::scaled(scale);
            p.faults = faults;
            p.interference = interference;
            hacc::run_with(p, scale, seed)
        }
        WorkloadKind::Cosmoflow => {
            let mut p = cosmoflow::CosmoflowParams::scaled(scale);
            p.faults = faults;
            p.interference = interference;
            cosmoflow::run_with(p, scale, seed)
        }
        WorkloadKind::Jag => {
            let mut p = jag::JagParams::scaled(scale);
            p.faults = faults;
            p.interference = interference;
            jag::run_with(p, scale, seed)
        }
        WorkloadKind::MontageMpi => {
            let mut p = montage::MontageParams::scaled(scale);
            p.faults = faults;
            p.interference = interference;
            montage::run_with(p, scale, seed)
        }
        WorkloadKind::MontagePegasus => {
            let mut p = montage_pegasus::PegasusParams::scaled(scale);
            p.faults = faults;
            p.interference = interference;
            montage_pegasus::run_with(p, scale, seed)
        }
        WorkloadKind::Ior => {
            let mut p = ior::IorParams::scaled(scale);
            p.faults = faults;
            p.interference = interference;
            ior::run(p, seed)
        }
    }
}

/// A dedicated profile run's contribution to the fleet: the scheduler's
/// runtime estimate and the contention model's demand fractions.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Profile {
    runtime: Dur,
    demand: TenantDemand,
}

/// Demand fractions of one profile run against the (scaled) shared PFS.
/// Server-side counters, so client-cache hits do not count as demand.
fn profile_of(run: &WorkloadRun, pfs_capacity_scale: f64) -> Profile {
    let cfg = GpfsConfig::lassen();
    let cap = pfs_capacity_scale.max(1e-6);
    let data_capacity = cfg.n_data_servers as f64 * cfg.server_bw as f64 * cap;
    let meta_capacity = cfg.n_meta_servers as f64 / cfg.meta_op_cost.as_secs_f64() * cap;
    let s = run.world.storage.pfs().stats();
    let rt = run.runtime().as_secs_f64().max(1e-9);
    Profile {
        runtime: run.runtime(),
        demand: TenantDemand {
            // Cap: a tenant never presents more than 8x the shared
            // capacity, keeping pathological profiles from freezing the
            // fleet's service times.
            data_frac: ((s.bytes_read + s.bytes_written) as f64 / rt / data_capacity).min(8.0),
            meta_frac: (s.meta_ops as f64 / rt / meta_capacity).min(8.0),
        },
    }
}

/// One fleet job's compact outcome. Everything the statistics layer needs,
/// nothing it does not — the trace is dropped inside the scenario closure.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// Job id (admission position).
    pub job_id: usize,
    /// Workload id.
    pub workload: String,
    /// Variant the job ran.
    pub variant: JobVariant,
    /// Submission time, seconds.
    pub submit: f64,
    /// Scheduled start, seconds.
    pub start: f64,
    /// Nodes occupied.
    pub nodes: u32,
    /// Total ranks.
    pub n_ranks: u32,
    /// Simulated runtime, seconds (with contention and faults).
    pub runtime: f64,
    /// Mean per-rank I/O-time fraction.
    pub io_time_frac: f64,
    /// Interface-layer bytes read.
    pub read_bytes: u64,
    /// Interface-layer bytes written.
    pub write_bytes: u64,
    /// Interface-layer data operations.
    pub data_ops: u64,
    /// Interface-layer metadata operations.
    pub meta_ops: u64,
    /// Aggregate bandwidth, bytes/second.
    pub agg_bw: f64,
    /// Duration-weighted mean competing data load the job saw.
    pub mean_neighbor_load: f64,
    /// Extra service time tenants cost this job, seconds.
    pub tenant_delay_secs: f64,
    /// PFS operations stretched by competing tenants.
    pub contended_ops: u64,
    /// Fault events absorbed or surfaced.
    pub fault_events: u64,
    /// Restart epochs after crashes.
    pub restart_events: u64,
    /// Runtime / dedicated same-variant profile runtime.
    pub slowdown: f64,
    /// How the job's fleet story ended (always `Completed` in a healthy
    /// fleet; abandoned jobs are not simulated and appear only in the
    /// report's schedules, never in its records).
    pub outcome: super::scheduler::JobOutcome,
    /// Node-outage kills absorbed before the simulated (final) attempt.
    pub retries: u32,
    /// Node-seconds of scheduler-estimated work the outages destroyed
    /// across this job's killed attempts.
    pub lost_work_node_secs: f64,
    /// Fraction of the job's captured trace that survived spill recovery
    /// (1.0 on the in-memory path and for fully durable spills).
    pub trace_complete_frac: f64,
    /// Captured trace records lost to spill faults (0 on the in-memory
    /// path).
    pub trace_lost_records: u64,
}

/// Run the whole fleet. See the module docs for the wave structure.
pub fn fleet_sweep(cfg: &FleetConfig, driver: Driver) -> Result<FleetReport, FleetError> {
    let manifest = build_manifest(cfg)?;

    // Distinct (workload, variant) combos, in KNOWN_WORKLOADS × variant
    // order. Baselines are also profiled for any workload with crashy
    // jobs: the crash instant anchors to the baseline makespan.
    let variants = [
        JobVariant::Baseline,
        JobVariant::Faulted,
        JobVariant::Crashy,
    ];
    let mut combos: Vec<(WorkloadKind, JobVariant)> = Vec::new();
    for w in KNOWN_WORKLOADS {
        let kind = parse_workload(w).expect("known");
        for v in variants {
            let present = manifest
                .jobs
                .iter()
                .any(|j| j.workload == w && j.variant == v);
            let crash_anchor = v == JobVariant::Baseline
                && manifest
                    .jobs
                    .iter()
                    .any(|j| j.workload == w && j.variant == JobVariant::Crashy);
            if present || crash_anchor {
                combos.push((kind, v));
            }
        }
    }

    // Wave 1: baseline + faulted profiles on a dedicated machine.
    let mut w1 = ScenarioSet::new(cfg.seed);
    let mut w1_combos = Vec::new();
    for &(kind, v) in combos.iter().filter(|(_, v)| *v != JobVariant::Crashy) {
        w1_combos.push((kind, v));
        let (scale, seed, cap) = (cfg.scale, cfg.seed, cfg.pfs_capacity_scale);
        let plan = match v {
            JobVariant::Baseline => FaultPlan::none(),
            JobVariant::Faulted => faulted_plan(),
            JobVariant::Crashy => unreachable!("filtered"),
        };
        w1.add(
            format!("profile/{}/{}", workload_id(kind), v.name()),
            move |_| {
                profile_of(
                    &run_job(
                        kind,
                        scale,
                        seed,
                        plan.clone(),
                        InterferenceSchedule::none(),
                    ),
                    cap,
                )
            },
        );
    }
    let w1_profiles = w1.run(driver);
    let mut profiles: Vec<((WorkloadKind, JobVariant), Profile)> =
        w1_combos.iter().copied().zip(w1_profiles).collect();

    let baseline_runtime = |profiles: &[((WorkloadKind, JobVariant), Profile)], kind| {
        profiles
            .iter()
            .find(|((k, v), _)| *k == kind && *v == JobVariant::Baseline)
            .map(|(_, p)| p.runtime)
            .expect("baseline profile exists for every crashy workload")
    };

    // Wave 1b: crashy profiles, crash instant anchored to wave 1.
    let crashy_combos: Vec<WorkloadKind> = combos
        .iter()
        .filter(|(_, v)| *v == JobVariant::Crashy)
        .map(|(k, _)| *k)
        .collect();
    if !crashy_combos.is_empty() {
        let mut w1b = ScenarioSet::new(cfg.seed ^ 0xB);
        for &kind in &crashy_combos {
            let (scale, seed, cap) = (cfg.scale, cfg.seed, cfg.pfs_capacity_scale);
            let plan = crashy_plan(baseline_runtime(&profiles, kind));
            w1b.add(format!("profile/{}/crashy", workload_id(kind)), move |_| {
                profile_of(
                    &run_job(
                        kind,
                        scale,
                        seed,
                        plan.clone(),
                        InterferenceSchedule::none(),
                    ),
                    cap,
                )
            });
        }
        let w1b_profiles = w1b.run(driver);
        profiles.extend(
            crashy_combos
                .iter()
                .map(|&k| (k, JobVariant::Crashy))
                .zip(w1b_profiles),
        );
    }

    let profile_for = |workload: &str, v: JobVariant| -> Profile {
        let kind = parse_workload(workload).expect("validated");
        profiles
            .iter()
            .find(|((k, pv), _)| *k == kind && *pv == v)
            .map(|(_, p)| *p)
            .expect("every manifest combo was profiled")
    };

    // Schedule the manifest onto the shared cluster. With an empty outage
    // plan and backfill off, `resilient_schedule` *delegates* to the
    // legacy `fcfs_schedule`, so healthy placements — and everything
    // downstream of them — are bit-identical to the pre-failure-domain
    // fleet.
    let submits: Vec<f64> = manifest.jobs.iter().map(|j| j.submit).collect();
    let arrivals = ScheduleArrivals::from_process(&cfg.arrival, &submits);
    let demands: Vec<JobDemand> = manifest
        .jobs
        .iter()
        .map(|j| JobDemand {
            nodes: j.nodes,
            est_runtime: profile_for(&j.workload, j.variant).runtime.as_secs_f64(),
        })
        .collect();
    let degraded = !manifest.node_faults.is_empty() || cfg.sched.backfill;
    let schedules: Vec<JobSchedule> = resilient_schedule(
        cfg.cluster_nodes,
        &demands,
        &arrivals,
        &manifest.node_faults,
        &cfg.sched,
    );
    let placements: Vec<_> = schedules.iter().map(JobSchedule::as_placement).collect();
    // The healthy-fleet counterfactual the degraded tables compare
    // against: the same demands FCFS-scheduled onto a never-failing pool.
    let healthy_placements = if degraded {
        fcfs_schedule(cfg.cluster_nodes, &demands, &arrivals)
    } else {
        placements.clone()
    };
    let tenant_demands: Vec<TenantDemand> = manifest
        .jobs
        .iter()
        .map(|j| profile_for(&j.workload, j.variant).demand)
        .collect();

    // Wave 2: the fleet itself. Abandoned jobs never produced a result,
    // so they are not simulated — their cost shows up in the schedules
    // (lost work, outcome counts), not the records. Killed-then-retried
    // jobs re-enter with deterministically re-derived seeds, the
    // supervised-retry idiom.
    let mut w2 = ScenarioSet::new(cfg.seed ^ 0x2);
    let mut simulated: Vec<usize> = Vec::with_capacity(manifest.jobs.len());
    for (i, j) in manifest.jobs.iter().enumerate() {
        if !schedules[i].outcome.completed() {
            continue;
        }
        simulated.push(i);
        let kind = parse_workload(&j.workload).expect("validated");
        let plan = match j.variant {
            JobVariant::Baseline => FaultPlan::none(),
            JobVariant::Faulted => faulted_plan(),
            JobVariant::Crashy => crashy_plan(baseline_runtime(&profiles, kind)),
        };
        let schedule = if degraded {
            interference_for_degraded(
                i,
                &schedules,
                &tenant_demands,
                &manifest.node_faults,
                cfg.cluster_nodes,
            )
        } else {
            interference_for(i, &placements, &tenant_demands)
        };
        let placement = placements[i];
        let retries = schedules[i].outcome.retries();
        let lost_work = schedules[i].lost_node_secs(j.nodes);
        let outcome = schedules[i].outcome;
        let sim_seed = retry_seed(j.seed, retries);
        let dedicated = profile_for(&j.workload, j.variant).runtime.as_secs_f64();
        let job = j.clone();
        let scale = cfg.scale;
        let spill = cfg.spill.clone();
        let id = if retries > 0 {
            format!(
                "job/{:05}/{}/{}/retry{}",
                j.id,
                j.workload,
                j.variant.name(),
                retries
            )
        } else {
            format!("job/{:05}/{}/{}", j.id, j.workload, j.variant.name())
        };
        w2.add(id, move |_| {
            let run = run_job(kind, scale, sim_seed, plan.clone(), schedule.clone());
            // Streaming analysis: the job's trace is sealed into compressed
            // chunks and profiled chunk-at-a-time, never retained — a
            // 10⁴-job fleet holds at most one decoded chunk per worker.
            // Every JobRecord field is profile-level, and the streaming
            // profile is bit-identical to the fused one, so the rendered
            // report is byte-for-byte unchanged. With a spill spec the
            // chunks detour through an on-disk segment log and the
            // analysis covers whatever prefix recovery salvaged; an
            // environmental spill failure (ENOSPC, unwritable dir) falls
            // back to the in-memory path with the trace marked fully
            // non-durable.
            let captured = run.columnar_view().len() as u64;
            let (a, trace_complete_frac, trace_lost_records) = match &spill {
                Some(spec) => {
                    let path = spec.dir.join(format!("job-{:05}.vsp3", job.id));
                    match Analysis::from_run_spilled(&run, &path, spec.fault) {
                        Ok((a, fsck)) => {
                            let durable = fsck.committed_records.min(captured);
                            let frac = if captured == 0 {
                                1.0
                            } else {
                                durable as f64 / captured as f64
                            };
                            (a, frac, captured - durable)
                        }
                        Err(_) => (Analysis::from_run_streaming(&run), 0.0, captured),
                    }
                }
                None => (Analysis::from_run_streaming(&run), 1.0, 0),
            };
            let s = run.world.storage.pfs().stats();
            let rt = run.runtime().as_secs_f64();
            JobRecord {
                job_id: job.id,
                workload: job.workload.clone(),
                variant: job.variant,
                submit: placement.submit,
                start: placement.start,
                nodes: a.nodes,
                n_ranks: a.n_ranks,
                runtime: rt,
                io_time_frac: a.io_time_frac,
                read_bytes: a.read_bytes,
                write_bytes: a.write_bytes,
                data_ops: a.data_ops,
                meta_ops: a.meta_ops,
                agg_bw: (a.read_bytes + a.write_bytes) as f64 / rt.max(1e-9),
                mean_neighbor_load: schedule
                    .mean_data_load(SimTime::from_nanos(run.runtime().as_nanos())),
                tenant_delay_secs: s.tenant_delay_nanos as f64 / 1e9,
                contended_ops: s.contended_data_ops + s.contended_meta_ops,
                fault_events: a.fault_events,
                restart_events: a.restart_events,
                slowdown: rt / dedicated.max(1e-9),
                outcome,
                retries,
                lost_work_node_secs: lost_work,
                trace_complete_frac,
                trace_lost_records,
            }
        });
    }
    let records = w2.run(driver);
    debug_assert_eq!(records.len(), simulated.len());

    let profile_summaries: Vec<ProfileSummary> = profiles
        .iter()
        .map(|((k, v), p)| ProfileSummary {
            workload: workload_id(*k).to_string(),
            variant: v.name().to_string(),
            runtime_s: p.runtime.as_secs_f64(),
            data_frac: p.demand.data_frac,
            meta_frac: p.demand.meta_frac,
        })
        .collect();

    let spill = cfg
        .spill
        .as_ref()
        .map(|_| super::stats::SpillFleetStats::from_records(&records));

    Ok(FleetReport {
        scale: cfg.scale,
        seed: cfg.seed,
        manifest,
        placements,
        profiles: profile_summaries,
        records,
        policy: cfg.sched,
        schedules,
        healthy_placements,
        spill,
    })
}
