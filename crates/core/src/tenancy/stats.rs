//! Fleet-scale statistical characterization, IO500-submission-study
//! style: per-attribute distributions, cross-attribute correlations, and
//! the noisy-neighbor impact table.
//!
//! Every number is formatted with a fixed precision and every aggregation
//! is a sequential pass over job-id-ordered records, so the rendered
//! report (and its digest) is byte-identical at any worker count.

use super::fleet::{FleetManifest, JobRecord};
use super::scheduler::{JobOutcome, JobSchedule, Placement, SchedPolicy};
use crate::tables::Table;
use sim_core::units::MIB;
use vani_rt::stats::{pearson, Quantiles};
use vani_rt::Json;

/// One dedicated profile run, as the report presents it.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileSummary {
    /// Workload id.
    pub workload: String,
    /// Variant name.
    pub variant: String,
    /// Dedicated-machine runtime, seconds.
    pub runtime_s: f64,
    /// Data demand as a fraction of the (scaled) shared PFS bandwidth.
    pub data_frac: f64,
    /// Metadata demand as a fraction of the (scaled) MDS service rate.
    pub meta_frac: f64,
}

/// Trace-durability accounting for a spilled fleet: how many jobs'
/// on-disk segment logs survived recovery intact, partially, or not at
/// all. Present only when the fleet ran with `--spill`, so in-memory
/// reports render — and digest — byte-identically to the pre-spill fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct SpillFleetStats {
    /// Jobs that spilled (every simulated job when spill is armed).
    pub jobs: usize,
    /// Jobs whose entire captured trace was durable on disk.
    pub fully_durable: usize,
    /// Jobs that lost a suffix of their trace to an injected fault but
    /// recovered a non-empty committed prefix.
    pub partial: usize,
    /// Jobs whose log was unrecoverable (or whose spill failed
    /// environmentally and fell back to in-memory analysis).
    pub lost_entirely: usize,
    /// Captured trace records lost across the fleet.
    pub lost_records: u64,
    /// Mean surviving-trace fraction across spilled jobs.
    pub mean_complete_frac: f64,
}

impl SpillFleetStats {
    /// Sequential job-id-order fold over the records (worker-count
    /// independent, like every other reduction here).
    pub fn from_records(records: &[JobRecord]) -> Self {
        let mut s = SpillFleetStats {
            jobs: records.len(),
            fully_durable: 0,
            partial: 0,
            lost_entirely: 0,
            lost_records: 0,
            mean_complete_frac: f64::NAN,
        };
        let mut frac_sum = 0.0f64;
        for r in records {
            if r.trace_lost_records == 0 {
                s.fully_durable += 1;
            } else if r.trace_complete_frac > 0.0 {
                s.partial += 1;
            } else {
                s.lost_entirely += 1;
            }
            s.lost_records += r.trace_lost_records;
            frac_sum += r.trace_complete_frac;
        }
        if !records.is_empty() {
            s.mean_complete_frac = frac_sum / records.len() as f64;
        }
        s
    }
}

/// Everything a fleet sweep produced.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Scale the fleet ran at.
    pub scale: f64,
    /// The fleet seed.
    pub seed: u64,
    /// The job manifest, as drawn.
    pub manifest: FleetManifest,
    /// FCFS placements, in admission order.
    pub placements: Vec<Placement>,
    /// Dedicated profile runs, in profile-wave order.
    pub profiles: Vec<ProfileSummary>,
    /// Per-job outcomes, in admission order (abandoned jobs are not
    /// simulated and have no record; see `schedules`).
    pub records: Vec<JobRecord>,
    /// The self-healing scheduler's policy.
    pub policy: SchedPolicy,
    /// Every job's full attempt history, in admission order.
    pub schedules: Vec<JobSchedule>,
    /// The healthy-fleet counterfactual: the same demands FCFS-placed
    /// onto a never-failing pool (equals `placements` when the plan is
    /// empty and backfill is off).
    pub healthy_placements: Vec<Placement>,
    /// Trace-durability accounting, present only when the fleet spilled
    /// its traces to disk (gates the spill section exactly like
    /// `node_faults` gates the degraded sections).
    pub spill: Option<SpillFleetStats>,
}

/// FNV-1a 64-bit digest; stable, dependency-free, good enough to pin a
/// report's identity across worker counts in tests and benches.
pub(crate) fn fnv1a64(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Fixed-precision cell; NaN (empty sample / degenerate correlation)
/// renders as "-".
fn cell(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.4}")
    } else {
        "-".to_string()
    }
}

/// The attributes the distribution table and correlation matrix cover.
/// Kept as one list so the two stay in sync.
fn attributes() -> Vec<(&'static str, fn(&JobRecord) -> f64)> {
    vec![
        ("runtime (s)", |r: &JobRecord| r.runtime),
        ("queue wait (s)", |r: &JobRecord| r.start - r.submit),
        ("io time frac", |r: &JobRecord| r.io_time_frac),
        ("agg bw (MiB/s)", |r: &JobRecord| r.agg_bw / MIB as f64),
        ("meta ops", |r: &JobRecord| r.meta_ops as f64),
        ("neighbor load", |r: &JobRecord| r.mean_neighbor_load),
        ("tenant delay (s)", |r: &JobRecord| r.tenant_delay_secs),
        ("slowdown", |r: &JobRecord| r.slowdown),
    ]
}

/// Subset of [`attributes`] used for the correlation matrix (queue wait
/// and tenant delay are near-duplicates of neighbor load by construction;
/// the matrix keeps the interesting axes readable).
const CORR_ATTRS: [&str; 6] = [
    "runtime (s)",
    "io time frac",
    "agg bw (MiB/s)",
    "meta ops",
    "neighbor load",
    "slowdown",
];

impl FleetReport {
    /// Digest of the manifest plus the admission schedule — what the
    /// byte-identity tests pin across worker counts.
    pub fn admission_digest(&self) -> u64 {
        let mut text = self.manifest.render();
        for p in &self.placements {
            text.push_str(&format!(
                "{:>5} submit {:.6} start {:.6} end {:.6}\n",
                p.id, p.submit, p.start, p.end
            ));
        }
        fnv1a64(&text)
    }

    /// Mean queueing delay across the fleet, seconds.
    pub fn mean_wait(&self) -> f64 {
        if self.placements.is_empty() {
            return 0.0;
        }
        self.placements.iter().map(Placement::wait).sum::<f64>() / self.placements.len() as f64
    }

    fn profile_table(&self) -> Table {
        Table {
            title: "Dedicated profiles (wave 1)".to_string(),
            header: [
                "workload",
                "variant",
                "runtime (s)",
                "data demand",
                "meta demand",
            ]
            .map(String::from)
            .to_vec(),
            rows: self
                .profiles
                .iter()
                .map(|p| {
                    vec![
                        p.workload.clone(),
                        p.variant.clone(),
                        format!("{:.3}", p.runtime_s),
                        cell(p.data_frac),
                        cell(p.meta_frac),
                    ]
                })
                .collect(),
        }
    }

    fn distribution_table(&self) -> Table {
        Table {
            title: "Fleet attribute distributions".to_string(),
            header: ["attribute", "n", "min", "p50", "p90", "p99", "max", "mean"]
                .map(String::from)
                .to_vec(),
            rows: attributes()
                .iter()
                .map(|(name, f)| {
                    let xs: Vec<f64> = self.records.iter().map(|r| f(r)).collect();
                    let q = Quantiles::of(&xs);
                    vec![
                        name.to_string(),
                        q.n.to_string(),
                        cell(q.min),
                        cell(q.p50),
                        cell(q.p90),
                        cell(q.p99),
                        cell(q.max),
                        cell(q.mean),
                    ]
                })
                .collect(),
        }
    }

    fn correlation_table(&self) -> Table {
        let attrs: Vec<(&str, fn(&JobRecord) -> f64)> = attributes()
            .into_iter()
            .filter(|(n, _)| CORR_ATTRS.contains(n))
            .collect();
        let samples: Vec<Vec<f64>> = attrs
            .iter()
            .map(|(_, f)| self.records.iter().map(|r| f(r)).collect())
            .collect();
        let mut header = vec!["pearson r".to_string()];
        header.extend(attrs.iter().map(|(n, _)| n.to_string()));
        Table {
            title: "Cross-attribute correlation".to_string(),
            header,
            rows: attrs
                .iter()
                .enumerate()
                .map(|(i, (name, _))| {
                    let mut row = vec![name.to_string()];
                    row.extend((0..attrs.len()).map(|j| cell(pearson(&samples[i], &samples[j]))));
                    row
                })
                .collect(),
        }
    }

    fn noisy_neighbor_table(&self) -> Table {
        let mut rows = Vec::new();
        for p in &self.profiles {
            let group: Vec<&JobRecord> = self
                .records
                .iter()
                .filter(|r| r.workload == p.workload && r.variant.name() == p.variant)
                .collect();
            if group.is_empty() {
                continue;
            }
            let runtimes: Vec<f64> = group.iter().map(|r| r.runtime).collect();
            let slowdowns: Vec<f64> = group.iter().map(|r| r.slowdown).collect();
            let loads: Vec<f64> = group.iter().map(|r| r.mean_neighbor_load).collect();
            let qr = Quantiles::of(&runtimes);
            let qs = Quantiles::of(&slowdowns);
            rows.push(vec![
                p.workload.clone(),
                p.variant.clone(),
                group.len().to_string(),
                format!("{:.3}", p.runtime_s),
                format!("{:.3}", qr.p50),
                format!("{:.3}", qr.p99),
                cell(qs.p50),
                cell(qs.p99),
                cell(loads.iter().sum::<f64>() / loads.len() as f64),
            ]);
        }
        Table {
            title: "Noisy neighbor impact (fleet vs dedicated)".to_string(),
            header: [
                "workload",
                "variant",
                "jobs",
                "dedicated (s)",
                "fleet p50 (s)",
                "fleet p99 (s)",
                "slowdown p50",
                "slowdown p99",
                "mean load",
            ]
            .map(String::from)
            .to_vec(),
            rows,
        }
    }

    /// Whether the fleet ran under an active node fault plan (gates every
    /// degraded-mode section, keeping healthy reports byte-identical to
    /// the pre-failure-domain renderer).
    pub fn is_degraded(&self) -> bool {
        !self.manifest.node_faults.is_empty()
    }

    fn spill_table(&self, s: &SpillFleetStats) -> Table {
        let rows = vec![
            vec!["jobs spilled".to_string(), s.jobs.to_string()],
            vec!["fully durable".to_string(), s.fully_durable.to_string()],
            vec![
                "partial (prefix recovered)".to_string(),
                s.partial.to_string(),
            ],
            vec!["lost entirely".to_string(), s.lost_entirely.to_string()],
            vec!["records lost".to_string(), s.lost_records.to_string()],
            vec![
                "mean surviving fraction".to_string(),
                cell(s.mean_complete_frac),
            ],
        ];
        Table {
            title: "Spill durability (trace records recovered from disk)".to_string(),
            header: ["metric", "value"].map(String::from).to_vec(),
            rows,
        }
    }

    /// Total attempts / total jobs: 1.0 in a healthy fleet, > 1 when
    /// outages force requeues.
    pub fn retry_amplification(&self) -> f64 {
        if self.schedules.is_empty() {
            return 1.0;
        }
        let attempts: usize = self.schedules.iter().map(|s| s.attempts.len()).sum();
        attempts as f64 / self.schedules.len() as f64
    }

    /// Scheduler-estimated node-seconds of work destroyed by outages.
    pub fn lost_work_node_secs(&self) -> f64 {
        self.schedules
            .iter()
            .zip(&self.manifest.jobs)
            .map(|(s, j)| s.lost_node_secs(j.nodes))
            .sum::<f64>()
            + 0.0
    }

    /// Node-seconds of *useful* (completed final-attempt) work delivered.
    pub fn useful_work_node_secs(&self) -> f64 {
        self.schedules
            .iter()
            .zip(&self.manifest.jobs)
            .filter(|(s, _)| s.outcome.completed())
            .map(|(s, j)| {
                let a = s.final_attempt();
                (a.end - a.start).max(0.0) * j.nodes as f64
            })
            .sum::<f64>()
            + 0.0
    }

    /// Goodput fraction: useful work / (useful + lost) node-seconds.
    /// 1.0 when the outages destroyed nothing.
    pub fn goodput_frac(&self) -> f64 {
        let useful = self.useful_work_node_secs();
        let lost = self.lost_work_node_secs();
        if useful + lost <= 0.0 {
            1.0
        } else {
            useful / (useful + lost)
        }
    }

    /// Node-seconds of work the fleet *asked* for (every job, including
    /// abandoned ones, at its profiled runtime estimate).
    pub fn offered_node_secs(&self) -> f64 {
        self.schedules
            .iter()
            .zip(&self.manifest.jobs)
            .map(|(s, j)| {
                // The first attempt's planned span is the profiled
                // estimate; killed attempts end early, so re-derive the
                // estimate from any completed attempt or charge the
                // estimate the scheduler used.
                let est = s
                    .attempts
                    .iter()
                    .find(|a| a.killed_by.is_none())
                    .map(|a| a.end - a.start)
                    .unwrap_or_else(|| {
                        s.attempts
                            .iter()
                            .map(|a| a.end - a.start)
                            .fold(0.0, f64::max)
                    });
                est.max(0.0) * j.nodes as f64
            })
            .sum::<f64>()
            + 0.0
    }

    /// Outcome counts: (completed clean, completed after retry, abandoned).
    pub fn outcome_counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for s in &self.schedules {
            match s.outcome {
                JobOutcome::Completed => c.0 += 1,
                JobOutcome::CompletedAfterRetry(_) => c.1 += 1,
                JobOutcome::Abandoned => c.2 += 1,
            }
        }
        c
    }

    fn outage_table(&self) -> Table {
        Table {
            title: "Node outage timeline".to_string(),
            header: ["node", "down at (s)", "repaired (s)", "repair (s)"]
                .map(String::from)
                .to_vec(),
            rows: self
                .manifest
                .node_faults
                .outages
                .iter()
                .map(|o| {
                    vec![
                        o.node.to_string(),
                        format!("{:.3}", o.at),
                        format!("{:.3}", o.until),
                        format!("{:.3}", o.until - o.at),
                    ]
                })
                .collect(),
        }
    }

    fn degraded_accounting_table(&self) -> Table {
        let (clean, retried, abandoned) = self.outcome_counts();
        let rows = vec![
            vec!["jobs completed clean".to_string(), clean.to_string()],
            vec![
                "jobs completed after retry".to_string(),
                retried.to_string(),
            ],
            vec!["jobs abandoned".to_string(), abandoned.to_string()],
            vec![
                "retry amplification (attempts/job)".to_string(),
                cell(self.retry_amplification()),
            ],
            vec![
                "offered load (node-s)".to_string(),
                format!("{:.3}", self.offered_node_secs()),
            ],
            vec![
                "goodput (node-s)".to_string(),
                format!("{:.3}", self.useful_work_node_secs()),
            ],
            vec![
                "lost work (node-s)".to_string(),
                format!("{:.3}", self.lost_work_node_secs()),
            ],
            vec!["goodput fraction".to_string(), cell(self.goodput_frac())],
            vec![
                "node-hours lost to outages".to_string(),
                cell(self.manifest.node_faults.node_hours_down()),
            ],
            vec![
                "scheduler policy".to_string(),
                format!(
                    "retries {} | backoff {:.0}s x{:.1} cap {:.0}s | backfill {}",
                    self.policy.max_retries,
                    self.policy.base_backoff,
                    self.policy.backoff_multiplier,
                    self.policy.max_backoff,
                    if self.policy.backfill { "on" } else { "off" }
                ),
            ],
        ];
        Table {
            title: "Degraded-mode accounting (goodput vs offered load)".to_string(),
            header: ["metric", "value"].map(String::from).to_vec(),
            rows,
        }
    }

    fn outcome_rows(&self) -> Table {
        Table {
            title: "Job outcomes under node failures".to_string(),
            header: [
                "job",
                "workload",
                "variant",
                "outcome",
                "attempts",
                "lost (node-s)",
            ]
            .map(String::from)
            .to_vec(),
            rows: self
                .schedules
                .iter()
                .zip(&self.manifest.jobs)
                .filter(|(s, _)| s.attempts.len() > 1 || s.outcome == JobOutcome::Abandoned)
                .map(|(s, j)| {
                    vec![
                        j.id.to_string(),
                        j.workload.clone(),
                        j.variant.name().to_string(),
                        match s.outcome {
                            JobOutcome::CompletedAfterRetry(n) => {
                                format!("completed-after-retry({n})")
                            }
                            o => o.name().to_string(),
                        },
                        s.attempts.len().to_string(),
                        format!("{:.3}", s.lost_node_secs(j.nodes)),
                    ]
                })
                .collect(),
        }
    }

    fn slowdown_vs_healthy_table(&self) -> Table {
        // Scheduler-level turnaround (terminal end - submit) of completed
        // jobs, grouped by (workload, variant), against the same jobs'
        // turnaround in the healthy counterfactual schedule.
        let mut rows = Vec::new();
        for p in &self.profiles {
            let group: Vec<usize> = self
                .manifest
                .jobs
                .iter()
                .filter(|j| {
                    j.workload == p.workload
                        && j.variant.name() == p.variant
                        && self.schedules[j.id].outcome.completed()
                })
                .map(|j| j.id)
                .collect();
            if group.is_empty() {
                continue;
            }
            let degraded: Vec<f64> = group
                .iter()
                .map(|&i| {
                    let s = &self.schedules[i];
                    (s.final_attempt().end - s.submit).max(0.0)
                })
                .collect();
            let healthy: Vec<f64> = group
                .iter()
                .map(|&i| {
                    let p = &self.healthy_placements[i];
                    (p.end - p.submit).max(0.0)
                })
                .collect();
            let qd = Quantiles::of(&degraded);
            let qh = Quantiles::of(&healthy);
            let ratio = if qh.mean > 0.0 {
                qd.mean / qh.mean
            } else {
                f64::NAN
            };
            rows.push(vec![
                p.workload.clone(),
                p.variant.clone(),
                group.len().to_string(),
                format!("{:.3}", qh.p50),
                format!("{:.3}", qd.p50),
                format!("{:.3}", qh.p99),
                format!("{:.3}", qd.p99),
                cell(ratio),
            ]);
        }
        Table {
            title: "Turnaround slowdown vs healthy fleet".to_string(),
            header: [
                "workload",
                "variant",
                "jobs",
                "healthy p50 (s)",
                "degraded p50 (s)",
                "healthy p99 (s)",
                "degraded p99 (s)",
                "mean slowdown",
            ]
            .map(String::from)
            .to_vec(),
            rows,
        }
    }

    /// Render the full report as `repro -- fleet-sweep` prints it.
    pub fn render(&self) -> String {
        let mut out = String::from("== Fleet sweep: multi-tenant shared-PFS characterization\n");
        out.push_str(&format!(
            "jobs {} | scale {:.4} | seed {} | cluster {} nodes | arrival {}\n",
            self.records.len(),
            self.scale,
            self.seed,
            self.manifest.cluster_nodes,
            self.manifest.arrival
        ));
        let makespan = self.placements.iter().map(|p| p.end).fold(0.0f64, f64::max);
        out.push_str(&format!(
            "admission digest {:016x} | schedule makespan {:.3} s | mean queue wait {:.3} s\n\n",
            self.admission_digest(),
            makespan,
            self.mean_wait()
        ));
        out.push_str(&self.profile_table().render());
        out.push('\n');
        out.push_str(&self.distribution_table().render());
        out.push('\n');
        out.push_str(&self.correlation_table().render());
        out.push('\n');
        out.push_str(&self.noisy_neighbor_table().render());
        if let Some(s) = &self.spill {
            out.push('\n');
            out.push_str(&self.spill_table(s).render());
        }
        if self.is_degraded() {
            out.push('\n');
            out.push_str(&self.outage_table().render());
            out.push('\n');
            out.push_str(&self.degraded_accounting_table().render());
            out.push('\n');
            out.push_str(&self.outcome_rows().render());
            out.push('\n');
            out.push_str(&self.slowdown_vs_healthy_table().render());
        }
        out
    }

    /// JSON summary for `BENCH_fleet.json`. Carries digests plus the
    /// aggregated tables, not the per-job records (the render has those in
    /// aggregate; the manifest digest pins the raw identity).
    pub fn to_json(&self) -> Json {
        let jnum = |x: f64| {
            if x.is_finite() {
                Json::Float(x)
            } else {
                Json::Null
            }
        };
        let quantiles = attributes()
            .iter()
            .map(|(name, f)| {
                let xs: Vec<f64> = self.records.iter().map(|r| f(r)).collect();
                let q = Quantiles::of(&xs);
                (
                    *name,
                    Json::obj([
                        ("n", Json::Int(q.n as i128)),
                        ("min", jnum(q.min)),
                        ("p50", jnum(q.p50)),
                        ("p90", jnum(q.p90)),
                        ("p99", jnum(q.p99)),
                        ("max", jnum(q.max)),
                        ("mean", jnum(q.mean)),
                    ]),
                )
            })
            .collect::<Vec<_>>();
        let profiles = self
            .profiles
            .iter()
            .map(|p| {
                Json::obj([
                    ("workload", Json::Str(p.workload.clone())),
                    ("variant", Json::Str(p.variant.clone())),
                    ("runtime_s", jnum(p.runtime_s)),
                    ("data_frac", jnum(p.data_frac)),
                    ("meta_frac", jnum(p.meta_frac)),
                ])
            })
            .collect::<Vec<_>>();
        let mut members = vec![
            ("n_jobs", Json::Int(self.records.len() as i128)),
            ("scale", Json::Float(self.scale)),
            ("seed", Json::Int(self.seed as i128)),
            (
                "cluster_nodes",
                Json::Int(self.manifest.cluster_nodes as i128),
            ),
            ("arrival", Json::Str(self.manifest.arrival.clone())),
            (
                "admission_digest",
                Json::Str(format!("{:016x}", self.admission_digest())),
            ),
            (
                "report_digest",
                Json::Str(format!("{:016x}", fnv1a64(&self.render()))),
            ),
            ("mean_queue_wait_s", jnum(self.mean_wait())),
            (
                "quantiles",
                Json::Obj(
                    quantiles
                        .into_iter()
                        .map(|(k, v)| (k.to_string(), v))
                        .collect(),
                ),
            ),
            ("profiles", Json::Arr(profiles)),
        ];
        // Spill keys appear only when the fleet spilled, keeping
        // in-memory BENCH_fleet.json bit-identical to the pre-spill
        // output.
        if let Some(s) = &self.spill {
            members.push((
                "spill",
                Json::obj([
                    ("jobs", Json::Int(s.jobs as i128)),
                    ("fully_durable", Json::Int(s.fully_durable as i128)),
                    ("partial", Json::Int(s.partial as i128)),
                    ("lost_entirely", Json::Int(s.lost_entirely as i128)),
                    ("lost_records", Json::Int(s.lost_records as i128)),
                    ("mean_complete_frac", jnum(s.mean_complete_frac)),
                ]),
            ));
        }
        // Degraded-mode keys appear only under an active plan, keeping
        // healthy BENCH_fleet.json bit-identical to the pre-change output.
        if self.is_degraded() {
            let (clean, retried, abandoned) = self.outcome_counts();
            members.push((
                "node_faults",
                Json::obj([
                    (
                        "outages",
                        Json::Int(self.manifest.node_faults.outages.len() as i128),
                    ),
                    (
                        "node_hours_down",
                        jnum(self.manifest.node_faults.node_hours_down()),
                    ),
                    ("completed_clean", Json::Int(clean as i128)),
                    ("completed_after_retry", Json::Int(retried as i128)),
                    ("abandoned", Json::Int(abandoned as i128)),
                    ("retry_amplification", jnum(self.retry_amplification())),
                    ("offered_node_secs", jnum(self.offered_node_secs())),
                    ("goodput_node_secs", jnum(self.useful_work_node_secs())),
                    ("lost_work_node_secs", jnum(self.lost_work_node_secs())),
                    ("goodput_frac", jnum(self.goodput_frac())),
                ]),
            ));
        }
        Json::obj(members)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_digest_is_stable_and_input_sensitive() {
        assert_eq!(fnv1a64(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64("fleet"), fnv1a64("fleet"));
        assert_ne!(fnv1a64("fleet"), fnv1a64("fleer"));
    }

    #[test]
    fn nan_cells_render_as_dashes() {
        assert_eq!(cell(f64::NAN), "-");
        assert_eq!(cell(f64::INFINITY), "-");
        assert_eq!(cell(1.25), "1.2500");
    }

    #[test]
    fn correlation_attrs_are_a_subset_of_the_attribute_list() {
        let names: Vec<&str> = attributes().iter().map(|(n, _)| *n).collect();
        for a in CORR_ATTRS {
            assert!(names.contains(&a), "{a} missing from attributes()");
        }
    }
}
