//! Mean-field contention: turn a fleet schedule into per-job
//! [`InterferenceSchedule`]s.
//!
//! Simulating thousands of concurrent jobs inside one engine timeline is
//! infeasible (and unnecessary for fleet statistics). Instead each job is
//! simulated alone, with its neighbors summarized as *competing load* on
//! the shared servers — the mean-field approximation queueing theory uses
//! for large shared systems:
//!
//! 1. every job's dedicated profile run yields its mean data-bandwidth
//!    demand and metadata-op rate, expressed as fractions of the shared
//!    PFS's aggregate capacities ([`TenantDemand`]);
//! 2. for job J, every other job whose placement overlaps J's contributes
//!    its demand fractions over the overlap window;
//! 3. the overlap windows are swept breakpoint-by-breakpoint into a
//!    piecewise-constant schedule, shifted to J's own timeline (J's
//!    simulation starts at t = 0), and installed into J's PFS.
//!
//! A job with no overlapping neighbors gets an *empty* schedule, which the
//! PFS treats as bit-identical to never installing one — the single-tenant
//! fleet therefore reproduces dedicated-run results exactly. The windows
//! are built by a sequential sweep in job-id order, so schedules are
//! deterministic at any worker count.

use super::scheduler::Placement;
use sim_core::SimTime;
use storage_sim::InterferenceSchedule;

/// One tenant's demand on the shared servers, as capacity fractions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantDemand {
    /// Mean data-path demand / aggregate NSD bandwidth.
    pub data_frac: f64,
    /// Mean metadata-op rate / aggregate MDS service rate.
    pub meta_frac: f64,
}

impl TenantDemand {
    /// No demand (an idle tenant).
    pub fn zero() -> Self {
        TenantDemand { data_frac: 0.0, meta_frac: 0.0 }
    }
}

/// Build job `job`'s interference schedule from the fleet placements and
/// per-job demands. Window times are relative to the job's own start.
pub fn interference_for(
    job: usize,
    placements: &[Placement],
    demands: &[TenantDemand],
) -> InterferenceSchedule {
    let me = &placements[job];
    if me.end <= me.start {
        return InterferenceSchedule::none();
    }
    // Neighbors overlapping my window, in job-id order.
    let mut overlapping: Vec<usize> = Vec::new();
    for (j, p) in placements.iter().enumerate() {
        if j != job && p.start < me.end && p.end > me.start {
            overlapping.push(j);
        }
    }
    if overlapping.is_empty() {
        return InterferenceSchedule::none();
    }
    // Breakpoints: my bounds plus every neighbor edge clamped into them.
    let mut cuts: Vec<f64> = vec![me.start, me.end];
    for &j in &overlapping {
        let p = &placements[j];
        if p.start > me.start && p.start < me.end {
            cuts.push(p.start);
        }
        if p.end > me.start && p.end < me.end {
            cuts.push(p.end);
        }
    }
    cuts.sort_by(f64::total_cmp);
    cuts.dedup();
    let mut schedule = InterferenceSchedule::none();
    for w in cuts.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        let mid = lo + (hi - lo) / 2.0;
        let (mut data, mut meta) = (0.0f64, 0.0f64);
        for &j in &overlapping {
            let p = &placements[j];
            if p.start <= mid && mid < p.end {
                data += demands[j].data_frac;
                meta += demands[j].meta_frac;
            }
        }
        if data > 0.0 || meta > 0.0 {
            schedule = schedule.with_window(
                SimTime::from_secs_f64(lo - me.start),
                SimTime::from_secs_f64(hi - me.start),
                data,
                meta,
            );
        }
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pl(id: usize, start: f64, end: f64) -> Placement {
        Placement { id, submit: start, start, end }
    }

    #[test]
    fn lonely_job_gets_empty_schedule() {
        let placements = [pl(0, 0.0, 10.0), pl(1, 20.0, 30.0)];
        let demands = [TenantDemand { data_frac: 0.5, meta_frac: 0.5 }; 2];
        assert!(interference_for(0, &placements, &demands).is_empty());
        assert!(interference_for(1, &placements, &demands).is_empty());
    }

    #[test]
    fn overlap_becomes_a_job_relative_window() {
        // Job 1 runs [5, 15); job 0 runs [0, 10): they overlap on [5, 10).
        let placements = [pl(0, 0.0, 10.0), pl(1, 5.0, 15.0)];
        let demands = [
            TenantDemand { data_frac: 0.4, meta_frac: 0.1 },
            TenantDemand { data_frac: 0.2, meta_frac: 0.3 },
        ];
        let s0 = interference_for(0, &placements, &demands);
        // On job 0's own timeline the neighbor covers [5, 10).
        assert_eq!(s0.data_factor(SimTime::from_secs_f64(2.0)), 1.0);
        assert!((s0.data_factor(SimTime::from_secs_f64(7.0)) - 1.2).abs() < 1e-12);
        assert!((s0.meta_factor(SimTime::from_secs_f64(7.0)) - 1.3).abs() < 1e-12);
        // On job 1's timeline job 0 covers [0, 5).
        let s1 = interference_for(1, &placements, &demands);
        assert!((s1.data_factor(SimTime::from_secs_f64(1.0)) - 1.4).abs() < 1e-12);
        assert_eq!(s1.data_factor(SimTime::from_secs_f64(8.0)), 1.0);
    }

    #[test]
    fn concurrent_neighbors_add_loads() {
        let placements = [pl(0, 0.0, 10.0), pl(1, 0.0, 10.0), pl(2, 0.0, 10.0)];
        let demands = [TenantDemand { data_frac: 0.25, meta_frac: 0.0 }; 3];
        let s = interference_for(0, &placements, &demands);
        assert!((s.data_factor(SimTime::from_secs_f64(5.0)) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn idle_neighbors_leave_the_schedule_empty() {
        let placements = [pl(0, 0.0, 10.0), pl(1, 0.0, 10.0)];
        let demands = [TenantDemand::zero(); 2];
        assert!(interference_for(0, &placements, &demands).is_empty());
    }
}
