//! Mean-field contention: turn a fleet schedule into per-job
//! [`InterferenceSchedule`]s.
//!
//! Simulating thousands of concurrent jobs inside one engine timeline is
//! infeasible (and unnecessary for fleet statistics). Instead each job is
//! simulated alone, with its neighbors summarized as *competing load* on
//! the shared servers — the mean-field approximation queueing theory uses
//! for large shared systems:
//!
//! 1. every job's dedicated profile run yields its mean data-bandwidth
//!    demand and metadata-op rate, expressed as fractions of the shared
//!    PFS's aggregate capacities ([`TenantDemand`]);
//! 2. for job J, every other job whose placement overlaps J's contributes
//!    its demand fractions over the overlap window;
//! 3. the overlap windows are swept breakpoint-by-breakpoint into a
//!    piecewise-constant schedule, shifted to J's own timeline (J's
//!    simulation starts at t = 0), and installed into J's PFS.
//!
//! A job with no overlapping neighbors gets an *empty* schedule, which the
//! PFS treats as bit-identical to never installing one — the single-tenant
//! fleet therefore reproduces dedicated-run results exactly. The windows
//! are built by a sequential sweep in job-id order, so schedules are
//! deterministic at any worker count.

use super::outage::NodeFaultPlan;
use super::scheduler::{JobSchedule, Placement};
use sim_core::SimTime;
use storage_sim::InterferenceSchedule;

/// One tenant's demand on the shared servers, as capacity fractions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantDemand {
    /// Mean data-path demand / aggregate NSD bandwidth.
    pub data_frac: f64,
    /// Mean metadata-op rate / aggregate MDS service rate.
    pub meta_frac: f64,
}

impl TenantDemand {
    /// No demand (an idle tenant).
    pub fn zero() -> Self {
        TenantDemand {
            data_frac: 0.0,
            meta_frac: 0.0,
        }
    }
}

/// Build job `job`'s interference schedule from the fleet placements and
/// per-job demands. Window times are relative to the job's own start.
pub fn interference_for(
    job: usize,
    placements: &[Placement],
    demands: &[TenantDemand],
) -> InterferenceSchedule {
    let me = &placements[job];
    if me.end <= me.start {
        return InterferenceSchedule::none();
    }
    // Neighbors overlapping my window, in job-id order.
    let mut overlapping: Vec<usize> = Vec::new();
    for (j, p) in placements.iter().enumerate() {
        if j != job && p.start < me.end && p.end > me.start {
            overlapping.push(j);
        }
    }
    if overlapping.is_empty() {
        return InterferenceSchedule::none();
    }
    // Breakpoints: my bounds plus every neighbor edge clamped into them.
    let mut cuts: Vec<f64> = vec![me.start, me.end];
    for &j in &overlapping {
        let p = &placements[j];
        if p.start > me.start && p.start < me.end {
            cuts.push(p.start);
        }
        if p.end > me.start && p.end < me.end {
            cuts.push(p.end);
        }
    }
    cuts.sort_by(f64::total_cmp);
    cuts.dedup();
    let mut schedule = InterferenceSchedule::none();
    for w in cuts.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        let mid = lo + (hi - lo) / 2.0;
        let (mut data, mut meta) = (0.0f64, 0.0f64);
        for &j in &overlapping {
            let p = &placements[j];
            if p.start <= mid && mid < p.end {
                data += demands[j].data_frac;
                meta += demands[j].meta_frac;
            }
        }
        if data > 0.0 || meta > 0.0 {
            schedule = schedule.with_window(
                SimTime::from_secs_f64(lo - me.start),
                SimTime::from_secs_f64(hi - me.start),
                data,
                meta,
            );
        }
    }
    schedule
}

/// Build job `job`'s interference schedule for its *final* attempt in a
/// degraded fleet. Two extensions over [`interference_for`]:
///
/// * **every attempt interferes** — a neighbor's killed partial attempts
///   loaded the shared servers while they ran, so each attempt interval
///   of each other job contributes that job's demand fractions;
/// * **pool-coupled capacity** — while `down` of the fleet's
///   `cluster_nodes` are out, the rack-co-located storage serves with
///   `(cluster_nodes - down) / cluster_nodes` of its hardware, expressed
///   as [`storage_sim::LoadWindow::capacity`] windows.
///
/// With an empty plan and single-attempt schedules this reduces to the
/// same windows [`interference_for`] builds — but degraded fleets call
/// this variant only, so the legacy path stays byte-identical untouched.
pub fn interference_for_degraded(
    job: usize,
    schedules: &[JobSchedule],
    demands: &[TenantDemand],
    plan: &NodeFaultPlan,
    cluster_nodes: u32,
) -> InterferenceSchedule {
    let me = schedules[job].final_attempt();
    let (my_start, my_end) = (me.start, me.end);
    if my_end <= my_start {
        return InterferenceSchedule::none();
    }
    // Neighbor intervals: every attempt of every other job that overlaps
    // mine, in (job-id, attempt) order.
    let mut intervals: Vec<(f64, f64, usize)> = Vec::new(); // (start, end, owner)
    for (j, s) in schedules.iter().enumerate() {
        if j == job {
            continue;
        }
        for a in &s.attempts {
            if a.start < my_end && a.end > my_start {
                intervals.push((a.start, a.end, j));
            }
        }
    }
    // Breakpoints: my bounds, neighbor edges, and capacity boundaries.
    let mut cuts: Vec<f64> = vec![my_start, my_end];
    for &(s, e, _) in &intervals {
        if s > my_start && s < my_end {
            cuts.push(s);
        }
        if e > my_start && e < my_end {
            cuts.push(e);
        }
    }
    for b in plan.boundaries() {
        if b > my_start && b < my_end {
            cuts.push(b);
        }
    }
    cuts.sort_by(f64::total_cmp);
    cuts.dedup();
    let mut schedule = InterferenceSchedule::none();
    for w in cuts.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        let mid = lo + (hi - lo) / 2.0;
        let (mut data, mut meta) = (0.0f64, 0.0f64);
        for &(s, e, j) in &intervals {
            if s <= mid && mid < e {
                data += demands[j].data_frac;
                meta += demands[j].meta_frac;
            }
        }
        let capacity = if cluster_nodes == 0 {
            1.0
        } else {
            (cluster_nodes - plan.down_count(mid).min(cluster_nodes)) as f64 / cluster_nodes as f64
        };
        // A dead pool still serves through survivors elsewhere in the
        // datacenter; floor the window instead of dividing by zero.
        let capacity = capacity.max(1e-3);
        let (from, until) = (
            SimTime::from_secs_f64(lo - my_start),
            SimTime::from_secs_f64(hi - my_start),
        );
        if capacity < 1.0 {
            schedule = schedule.with_window_capacity(from, until, data, meta, capacity);
        } else if data > 0.0 || meta > 0.0 {
            schedule = schedule.with_window(from, until, data, meta);
        }
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::super::scheduler::{JobAttempt, JobOutcome};
    use super::*;

    fn pl(id: usize, start: f64, end: f64) -> Placement {
        Placement {
            id,
            submit: start,
            start,
            end,
        }
    }

    #[test]
    fn lonely_job_gets_empty_schedule() {
        let placements = [pl(0, 0.0, 10.0), pl(1, 20.0, 30.0)];
        let demands = [TenantDemand {
            data_frac: 0.5,
            meta_frac: 0.5,
        }; 2];
        assert!(interference_for(0, &placements, &demands).is_empty());
        assert!(interference_for(1, &placements, &demands).is_empty());
    }

    #[test]
    fn overlap_becomes_a_job_relative_window() {
        // Job 1 runs [5, 15); job 0 runs [0, 10): they overlap on [5, 10).
        let placements = [pl(0, 0.0, 10.0), pl(1, 5.0, 15.0)];
        let demands = [
            TenantDemand {
                data_frac: 0.4,
                meta_frac: 0.1,
            },
            TenantDemand {
                data_frac: 0.2,
                meta_frac: 0.3,
            },
        ];
        let s0 = interference_for(0, &placements, &demands);
        // On job 0's own timeline the neighbor covers [5, 10).
        assert_eq!(s0.data_factor(SimTime::from_secs_f64(2.0)), 1.0);
        assert!((s0.data_factor(SimTime::from_secs_f64(7.0)) - 1.2).abs() < 1e-12);
        assert!((s0.meta_factor(SimTime::from_secs_f64(7.0)) - 1.3).abs() < 1e-12);
        // On job 1's timeline job 0 covers [0, 5).
        let s1 = interference_for(1, &placements, &demands);
        assert!((s1.data_factor(SimTime::from_secs_f64(1.0)) - 1.4).abs() < 1e-12);
        assert_eq!(s1.data_factor(SimTime::from_secs_f64(8.0)), 1.0);
    }

    #[test]
    fn concurrent_neighbors_add_loads() {
        let placements = [pl(0, 0.0, 10.0), pl(1, 0.0, 10.0), pl(2, 0.0, 10.0)];
        let demands = [TenantDemand {
            data_frac: 0.25,
            meta_frac: 0.0,
        }; 3];
        let s = interference_for(0, &placements, &demands);
        assert!((s.data_factor(SimTime::from_secs_f64(5.0)) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn idle_neighbors_leave_the_schedule_empty() {
        let placements = [pl(0, 0.0, 10.0), pl(1, 0.0, 10.0)];
        let demands = [TenantDemand::zero(); 2];
        assert!(interference_for(0, &placements, &demands).is_empty());
    }

    fn js(id: usize, attempts: Vec<JobAttempt>) -> JobSchedule {
        let submit = attempts.first().map(|a| a.start).unwrap_or(0.0);
        JobSchedule {
            id,
            submit,
            attempts,
            outcome: JobOutcome::Completed,
        }
    }

    fn att(attempt: u32, start: f64, end: f64, killed_by: Option<u32>) -> JobAttempt {
        JobAttempt {
            attempt,
            start,
            end,
            killed_by,
        }
    }

    #[test]
    fn degraded_matches_legacy_on_healthy_single_attempt_fleets() {
        let placements = [pl(0, 0.0, 10.0), pl(1, 5.0, 15.0)];
        let schedules = [
            js(0, vec![att(0, 0.0, 10.0, None)]),
            js(1, vec![att(0, 5.0, 15.0, None)]),
        ];
        let demands = [
            TenantDemand {
                data_frac: 0.4,
                meta_frac: 0.1,
            },
            TenantDemand {
                data_frac: 0.2,
                meta_frac: 0.3,
            },
        ];
        let plan = NodeFaultPlan::none();
        for j in 0..2 {
            let legacy = interference_for(j, &placements, &demands);
            let degraded = interference_for_degraded(j, &schedules, &demands, &plan, 8);
            assert_eq!(legacy, degraded);
        }
    }

    #[test]
    fn killed_neighbor_attempts_still_interfere() {
        // Neighbor 1's first attempt [0, 4) was killed; its retry runs
        // [8, 12). Job 0 runs [0, 12) and sees load in both intervals.
        let schedules = [
            js(0, vec![att(0, 0.0, 12.0, None)]),
            js(1, vec![att(0, 0.0, 4.0, Some(3)), att(1, 8.0, 12.0, None)]),
        ];
        let demands = [
            TenantDemand::zero(),
            TenantDemand {
                data_frac: 0.5,
                meta_frac: 0.0,
            },
        ];
        let plan = NodeFaultPlan::none();
        let s = interference_for_degraded(0, &schedules, &demands, &plan, 8);
        assert!((s.data_factor(SimTime::from_secs_f64(2.0)) - 1.5).abs() < 1e-12);
        assert_eq!(s.data_factor(SimTime::from_secs_f64(6.0)), 1.0);
        assert!((s.data_factor(SimTime::from_secs_f64(10.0)) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn node_outages_degrade_storage_capacity() {
        // 1 of 4 nodes down over [2, 6) of job 0's run: capacity 0.75.
        let schedules = [js(0, vec![att(0, 0.0, 10.0, None)])];
        let demands = [TenantDemand::zero()];
        let plan = NodeFaultPlan::none().with_outage(1, 2.0, 4.0);
        let s = interference_for_degraded(0, &schedules, &demands, &plan, 4);
        assert_eq!(s.data_factor(SimTime::from_secs_f64(1.0)), 1.0);
        assert!((s.data_factor(SimTime::from_secs_f64(3.0)) - 1.0 / 0.75).abs() < 1e-12);
        assert!((s.meta_factor(SimTime::from_secs_f64(3.0)) - 1.0 / 0.75).abs() < 1e-12);
        assert_eq!(s.data_factor(SimTime::from_secs_f64(8.0)), 1.0);
    }
}
