//! Seeded arrival processes for the fleet's job stream.
//!
//! Two classical regimes:
//!
//! * **Open**: jobs arrive from an external population at seeded random
//!   inter-arrival times (exponential for a Poisson stream, lognormal for
//!   the heavier-tailed submission gaps real schedulers see). The arrival
//!   stream never reacts to the cluster's state.
//! * **Closed**: a fixed population of `concurrency` users each submit a
//!   job, wait for it to finish, think for a fixed time, and submit the
//!   next one — arrival times are *derived* by the scheduler from job
//!   completions, so this module only carries the parameters.
//!
//! All randomness comes from the caller's [`Rng`] stream, drawn in job-id
//! order at manifest-build time, so the same fleet seed always produces
//! the same submission schedule regardless of worker count.

use vani_rt::Rng;

/// Inter-arrival distribution of the open arrival process.
#[derive(Debug, Clone, PartialEq)]
pub enum InterArrival {
    /// Exponential gaps: a Poisson arrival stream.
    Exponential,
    /// Lognormal gaps with the given shape `sigma`; `mu` is chosen so the
    /// distribution keeps the configured mean (`mu = ln(mean) - sigma²/2`).
    Lognormal {
        /// Shape parameter of the underlying normal.
        sigma: f64,
    },
}

impl InterArrival {
    /// Draw one inter-arrival gap with the given mean, in seconds.
    pub fn sample(&self, mean: f64, rng: &mut Rng) -> f64 {
        if !mean.is_finite() || mean <= 0.0 {
            return 0.0;
        }
        match self {
            InterArrival::Exponential => rng.exponential(1.0 / mean),
            InterArrival::Lognormal { sigma } => {
                let mu = mean.ln() - sigma * sigma / 2.0;
                rng.lognormal(mu, *sigma)
            }
        }
    }

    /// Stable name for manifests and reports.
    pub fn name(&self) -> &'static str {
        match self {
            InterArrival::Exponential => "exponential",
            InterArrival::Lognormal { .. } => "lognormal",
        }
    }
}

/// How jobs enter the fleet.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalProcess {
    /// Open-loop stream: seeded random inter-arrival gaps.
    Open {
        /// Mean gap between submissions, seconds.
        mean_interarrival: f64,
        /// Gap distribution.
        dist: InterArrival,
    },
    /// Closed loop: `concurrency` jobs in flight; each completion (plus a
    /// fixed think time) admits the next job.
    Closed {
        /// Jobs in flight at any instant.
        concurrency: usize,
        /// Seconds between a completion and the next submission.
        think_time: f64,
    },
}

impl ArrivalProcess {
    /// One-line description for report headers.
    pub fn describe(&self) -> String {
        match self {
            ArrivalProcess::Open {
                mean_interarrival,
                dist,
            } => {
                format!("open/{} mean {mean_interarrival:.3}s", dist.name())
            }
            ArrivalProcess::Closed {
                concurrency,
                think_time,
            } => {
                format!("closed/{concurrency} think {think_time:.3}s")
            }
        }
    }
}

/// Cumulative submit times of `n` open-process jobs, drawn in job order.
/// The first job submits after one gap (a stream, not a batch at t=0).
pub fn open_submit_times(n: usize, mean: f64, dist: &InterArrival, rng: &mut Rng) -> Vec<f64> {
    let mut t = 0.0f64;
    (0..n)
        .map(|_| {
            t += dist.sample(mean, rng);
            t
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_submit_times_are_monotone_and_seeded() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        let ta = open_submit_times(64, 2.0, &InterArrival::Exponential, &mut a);
        let tb = open_submit_times(64, 2.0, &InterArrival::Exponential, &mut b);
        assert_eq!(ta, tb, "same seed must give the same stream");
        for w in ta.windows(2) {
            assert!(w[1] >= w[0], "submit times must be non-decreasing");
        }
        let mut c = Rng::new(8);
        let tc = open_submit_times(64, 2.0, &InterArrival::Exponential, &mut c);
        assert_ne!(ta, tc, "different seeds should differ");
    }

    #[test]
    fn exponential_stream_matches_its_mean() {
        let mut rng = Rng::new(11);
        let ts = open_submit_times(4000, 3.0, &InterArrival::Exponential, &mut rng);
        let mean_gap = ts.last().unwrap() / ts.len() as f64;
        assert!((mean_gap - 3.0).abs() < 0.2, "mean gap {mean_gap}");
    }

    #[test]
    fn lognormal_is_mean_preserving() {
        let mut rng = Rng::new(13);
        let dist = InterArrival::Lognormal { sigma: 0.8 };
        let ts = open_submit_times(6000, 5.0, &dist, &mut rng);
        let mean_gap = ts.last().unwrap() / ts.len() as f64;
        assert!((mean_gap - 5.0).abs() < 0.4, "mean gap {mean_gap}");
    }

    #[test]
    fn degenerate_mean_collapses_to_zero_gaps() {
        let mut rng = Rng::new(1);
        let ts = open_submit_times(4, 0.0, &InterArrival::Exponential, &mut rng);
        assert_eq!(ts, vec![0.0; 4]);
    }
}
