//! # hpc-cluster
//!
//! A deterministic model of an HPC cluster and its parallel runtime:
//!
//! * [`topology`] — node and cluster specifications (cores, GPUs, memory,
//!   NIC bandwidth/latency, node-local storage tiers) with a preset modeled
//!   on LLNL's Lassen machine, the paper's testbed,
//! * [`job`] — job allocations: which nodes a job holds, how ranks map onto
//!   nodes and cores, and the storage directories visible to the job,
//! * [`mpi`] — communicators and an analytic cost model for collectives
//!   (barrier, bcast, gather, allreduce) over the cluster fabric,
//! * [`engine`] — the discrete-event engine that advances per-rank scripts
//!   through compute, I/O, and synchronization steps in global time order.
//!
//! The engine is generic over the "world" the scripts mutate, so this crate
//! knows nothing about file systems; the `io-layers` crate supplies a world
//! containing the storage stack.

pub mod engine;
pub mod job;
pub mod mpi;
pub mod topology;

pub use engine::{Engine, EngineReport, GateId, Outcome, RankScript, StepEffect};
pub use job::{JobAlloc, JobSpec};
pub use mpi::{CollectiveKind, CommId, Communicator, MpiCostModel};
pub use topology::{ClusterSpec, NodeId, NodeSpec, RankId};
