//! The discrete-event engine.
//!
//! Each rank runs a *script* — a state machine that, when asked, performs its
//! next step against the shared world (compute, an I/O call into the storage
//! stack, a collective, or a wait) and reports when it will be ready again.
//! The engine advances ranks in global time order, so resource queues inside
//! the world observe arrivals in causal order, and handles synchronization:
//! collectives over communicators and one-shot *gates* used for cross-rank
//! signalling (task queues, stage completion).
//!
//! The engine is generic over the world type `W`; this crate knows nothing
//! about storage. `io-layers` provides the world used by real workloads.

use crate::mpi::{CollectiveKind, CommId, Communicator, MpiCostModel};
use crate::topology::RankId;
use sim_core::{EventQueue, SimTime};
use std::collections::HashMap;

/// Identifies a one-shot signalling gate. Scripts allocate their own ids;
/// the engine only requires that waiters and openers agree on them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GateId(pub u64);

/// What a rank does next, as reported by its script.
#[derive(Debug)]
pub enum Outcome {
    /// The step occupied the rank until the given instant (compute or I/O
    /// whose completion time the world already determined). Must be `>= now`.
    BusyUntil(SimTime),
    /// The rank entered a collective on `comm`; it resumes when every member
    /// has arrived plus the modeled collective cost.
    Collective {
        /// Communicator to synchronize on.
        comm: CommId,
        /// Which collective.
        kind: CollectiveKind,
        /// Per-member payload bytes.
        bytes: u64,
    },
    /// Park until the gate opens (immediately resumes if already open).
    WaitGate(GateId),
    /// The rank's program is complete.
    Done,
}

/// The full effect of one step: the rank's own outcome plus any gates it
/// opened for others. Gates open before the outcome is applied, so a rank
/// may open the very gate it then waits on.
#[derive(Debug)]
pub struct StepEffect {
    /// What happens to the stepping rank.
    pub outcome: Outcome,
    /// Gates opened by this step.
    pub open_gates: Vec<GateId>,
}

impl StepEffect {
    /// A step that keeps the rank busy until `t`.
    pub fn busy_until(t: SimTime) -> Self {
        StepEffect {
            outcome: Outcome::BusyUntil(t),
            open_gates: Vec::new(),
        }
    }

    /// A step that ends the rank's program.
    pub fn done() -> Self {
        StepEffect {
            outcome: Outcome::Done,
            open_gates: Vec::new(),
        }
    }

    /// Attach gate openings to this effect.
    pub fn opening(mut self, gates: impl IntoIterator<Item = GateId>) -> Self {
        self.open_gates.extend(gates);
        self
    }
}

/// A per-rank program advanced by the engine.
pub trait RankScript<W> {
    /// Perform the rank's next step at time `now` against the world.
    fn next_step(&mut self, world: &mut W, rank: RankId, now: SimTime) -> StepEffect;
}

/// Adapter turning a closure into a [`RankScript`].
pub struct FnScript<F>(pub F);

impl<W, F> RankScript<W> for FnScript<F>
where
    F: FnMut(&mut W, RankId, SimTime) -> StepEffect,
{
    fn next_step(&mut self, world: &mut W, rank: RankId, now: SimTime) -> StepEffect {
        (self.0)(world, rank, now)
    }
}

#[derive(Debug)]
enum RankState {
    Runnable,
    /// Parked in a collective; the payload identifies it for diagnostics.
    InCollective(CommId),
    /// Parked on a gate; the payload identifies it for diagnostics.
    WaitingGate(GateId),
    Finished(SimTime),
}

/// What a deadlocked rank is stuck on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Blocker {
    /// Waiting on a gate no remaining rank will open.
    Gate(GateId),
    /// Parked in a collective the other members never joined.
    Collective(CommId),
}

/// The event queue drained while ranks were still blocked: a deadlock.
/// Carries each stuck rank and the gate or communicator it waits on, so
/// the failure names the exact synchronization object that never fired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlockError {
    /// The blocked ranks and what each is waiting on.
    pub blocked: Vec<(RankId, Blocker)>,
}

impl std::fmt::Display for DeadlockError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "deadlock: queue drained with {} rank(s) still blocked:",
            self.blocked.len()
        )?;
        for (rank, b) in &self.blocked {
            match b {
                Blocker::Gate(g) => write!(f, " {rank} waiting on gate {};", g.0)?,
                Blocker::Collective(c) => {
                    write!(f, " {rank} parked in collective on comm {};", c.0)?
                }
            }
        }
        Ok(())
    }
}

impl std::error::Error for DeadlockError {}

/// Why a checked run ([`Engine::run_checked`]) stopped before completion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunHalt {
    /// The event queue drained with ranks still blocked.
    Deadlock(DeadlockError),
    /// A scheduled crash fired: `rank` died at `at`. MPI semantics — one
    /// rank dying kills the whole job; the caller decides whether to
    /// restart from a checkpoint.
    Crashed {
        /// The rank whose death killed the job.
        rank: RankId,
        /// The instant of death.
        at: SimTime,
    },
}

impl std::fmt::Display for RunHalt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunHalt::Deadlock(d) => write!(f, "{d}"),
            RunHalt::Crashed { rank, at } => {
                write!(f, "job killed: {rank} crashed at {:.3}s", at.as_secs_f64())
            }
        }
    }
}

impl std::error::Error for RunHalt {}

#[derive(Debug)]
struct CollectiveState {
    kind: CollectiveKind,
    bytes: u64,
    arrived: Vec<RankId>,
    last_arrival: SimTime,
}

#[derive(Debug)]
enum GateState {
    Open(SimTime),
    Closed(Vec<RankId>),
}

/// Summary of a completed simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineReport {
    /// When the last rank finished — the job runtime.
    pub makespan: SimTime,
    /// Per-rank completion times, indexed by rank.
    pub finish_times: Vec<SimTime>,
    /// Total script steps executed.
    pub steps: u64,
}

/// The discrete-event engine driving all rank scripts over a shared world.
pub struct Engine<W> {
    world: W,
    scripts: Vec<Box<dyn RankScript<W>>>,
    states: Vec<RankState>,
    comms: HashMap<CommId, Communicator>,
    collectives: HashMap<CommId, CollectiveState>,
    gates: HashMap<GateId, GateState>,
    queue: EventQueue<RankId>,
    cost: MpiCostModel,
    steps: u64,
    max_steps: u64,
    /// Earliest scheduled crash, as `(instant, victim)`; checked by
    /// [`Engine::run_checked`] before each dispatch.
    kill: Option<(SimTime, RankId)>,
}

impl<W> Engine<W> {
    /// Build an engine over `world` with one script per rank. A WORLD
    /// communicator spanning all ranks is created automatically.
    pub fn new(world: W, scripts: Vec<Box<dyn RankScript<W>>>, cost: MpiCostModel) -> Self {
        Engine::new_at(world, scripts, cost, SimTime::ZERO)
    }

    /// [`Engine::new`] with an explicit launch instant: every rank's first
    /// step fires at `start` instead of time zero. Restart epochs use this
    /// so a relaunched job continues on the same simulated clock (and the
    /// same world) as the crashed epoch it replaces.
    pub fn new_at(
        world: W,
        scripts: Vec<Box<dyn RankScript<W>>>,
        cost: MpiCostModel,
        start: SimTime,
    ) -> Self {
        let n = scripts.len() as u32;
        let world_comm = Communicator::new(CommId::WORLD, (0..n).map(RankId).collect());
        let mut comms = HashMap::new();
        comms.insert(CommId::WORLD, world_comm);
        let states = (0..n).map(|_| RankState::Runnable).collect();
        // Every rank keeps at most one wake-up event pending, so the heap
        // never outgrows the rank count.
        let mut queue = EventQueue::with_capacity(n as usize);
        for r in 0..n {
            queue.push(start, RankId(r));
        }
        Engine {
            world,
            scripts,
            states,
            comms,
            collectives: HashMap::new(),
            gates: HashMap::new(),
            queue,
            cost,
            steps: 0,
            max_steps: u64::MAX,
            kill: None,
        }
    }

    /// Schedule a fatal crash: `rank` dies at `at`, killing the job (the
    /// run halts with [`RunHalt::Crashed`] at the first dispatch at or after
    /// `at`). When called repeatedly the earliest crash wins, ties broken by
    /// rank, so the halt is a pure function of the schedule.
    pub fn set_crash(&mut self, rank: RankId, at: SimTime) {
        let cand = (at, rank);
        self.kill = Some(match self.kill {
            Some(prev) if (prev.0, prev.1 .0) <= (cand.0, cand.1 .0) => prev,
            _ => cand,
        });
    }

    /// Register an additional communicator (sub-groups such as per-node
    /// comms or CosmoFlow's GPU comm).
    pub fn add_comm(&mut self, comm: Communicator) {
        assert!(
            comm.id != CommId::WORLD,
            "communicator 0 is reserved for WORLD"
        );
        self.comms.insert(comm.id, comm);
    }

    /// Cap the number of script steps; exceeding it panics. Useful for
    /// catching livelocked scripts in tests.
    pub fn set_max_steps(&mut self, max: u64) {
        self.max_steps = max;
    }

    /// Immutable access to the world (for post-run inspection).
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Mutable access to the world (for pre-run setup).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Consume the engine and return the world.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Run until every rank is done. Returns the run report.
    ///
    /// # Errors
    /// Returns [`DeadlockError`] when the event queue drains while some rank
    /// is still waiting on a gate or collective that can no longer complete;
    /// the error names each blocked rank and what it waits on.
    ///
    /// # Panics
    /// Panics when the step cap set via [`Engine::set_max_steps`] is
    /// exceeded (livelocked scripts), or when a crash scheduled via
    /// [`Engine::set_crash`] fires (use [`Engine::run_checked`] to handle
    /// crashes as values).
    pub fn run(&mut self) -> Result<EngineReport, DeadlockError> {
        self.run_checked().map_err(|halt| match halt {
            RunHalt::Deadlock(d) => d,
            RunHalt::Crashed { .. } => {
                panic!("{halt}; use run_checked() to recover from crash events")
            }
        })
    }

    /// [`Engine::run`] with crash events surfaced as values: a scheduled
    /// crash halts the run with [`RunHalt::Crashed`] instead of panicking,
    /// leaving the world (traces, durable storage) intact for a restart.
    pub fn run_checked(&mut self) -> Result<EngineReport, RunHalt> {
        while let Some(ev) = self.queue.pop() {
            if let Some((t_kill, victim)) = self.kill {
                if ev.time >= t_kill {
                    // The job dies at t_kill: nothing dispatched at or past
                    // that instant runs. World state up to the crash stays.
                    return Err(RunHalt::Crashed {
                        rank: victim,
                        at: t_kill,
                    });
                }
            }
            let rank = ev.payload;
            let now = ev.time;
            debug_assert!(
                matches!(self.states[rank.0 as usize], RankState::Runnable),
                "{rank} scheduled while not runnable"
            );
            self.steps += 1;
            assert!(
                self.steps <= self.max_steps,
                "engine exceeded max_steps = {}",
                self.max_steps
            );
            let effect = self.scripts[rank.0 as usize].next_step(&mut self.world, rank, now);
            for g in effect.open_gates {
                self.open_gate(g, now);
            }
            match effect.outcome {
                Outcome::BusyUntil(t) => {
                    assert!(t >= now, "{rank} reported completion in the past");
                    self.queue.push(t, rank);
                }
                Outcome::Collective { comm, kind, bytes } => {
                    self.arrive_collective(rank, comm, kind, bytes, now);
                }
                Outcome::WaitGate(g) => match self
                    .gates
                    .entry(g)
                    .or_insert_with(|| GateState::Closed(Vec::new()))
                {
                    GateState::Open(t_open) => {
                        let resume = now.max(*t_open);
                        self.queue.push(resume, rank);
                    }
                    GateState::Closed(waiters) => {
                        waiters.push(rank);
                        self.states[rank.0 as usize] = RankState::WaitingGate(g);
                    }
                },
                Outcome::Done => {
                    self.states[rank.0 as usize] = RankState::Finished(now);
                }
            }
        }
        let blocked: Vec<(RankId, Blocker)> = self
            .states
            .iter()
            .enumerate()
            .filter_map(|(i, s)| {
                let rank = RankId(i as u32);
                match s {
                    RankState::Finished(_) => None,
                    RankState::WaitingGate(g) => Some((rank, Blocker::Gate(*g))),
                    RankState::InCollective(c) => Some((rank, Blocker::Collective(*c))),
                    // A runnable rank always holds a queue event, so it
                    // cannot outlive the queue.
                    RankState::Runnable => unreachable!("{rank} runnable after queue drain"),
                }
            })
            .collect();
        if !blocked.is_empty() {
            return Err(RunHalt::Deadlock(DeadlockError { blocked }));
        }
        let finish_times: Vec<SimTime> = self
            .states
            .iter()
            .map(|s| match s {
                RankState::Finished(t) => *t,
                _ => unreachable!(),
            })
            .collect();
        let makespan = finish_times.iter().copied().max().unwrap_or(SimTime::ZERO);
        Ok(EngineReport {
            makespan,
            finish_times,
            steps: self.steps,
        })
    }

    fn open_gate(&mut self, g: GateId, now: SimTime) {
        match self.gates.insert(g, GateState::Open(now)) {
            Some(GateState::Closed(waiters)) => {
                for r in waiters {
                    self.states[r.0 as usize] = RankState::Runnable;
                    self.queue.push(now, r);
                }
            }
            Some(GateState::Open(earlier)) => {
                // Re-opening is idempotent; keep the earliest open time.
                self.gates.insert(g, GateState::Open(earlier.min(now)));
            }
            None => {}
        }
    }

    fn arrive_collective(
        &mut self,
        rank: RankId,
        comm_id: CommId,
        kind: CollectiveKind,
        bytes: u64,
        now: SimTime,
    ) {
        let comm = self
            .comms
            .get(&comm_id)
            .unwrap_or_else(|| panic!("unknown communicator {comm_id:?}"))
            .clone();
        assert!(
            comm.contains(rank),
            "{rank} called a collective on {comm_id:?} it does not belong to"
        );
        let entry = self
            .collectives
            .entry(comm_id)
            .or_insert_with(|| CollectiveState {
                kind,
                bytes,
                arrived: Vec::new(),
                last_arrival: SimTime::ZERO,
            });
        assert!(
            entry.kind == kind,
            "collective mismatch on {comm_id:?}: {:?} vs {kind:?}",
            entry.kind
        );
        entry.bytes = entry.bytes.max(bytes);
        entry.arrived.push(rank);
        entry.last_arrival = entry.last_arrival.max(now);
        self.states[rank.0 as usize] = RankState::InCollective(comm_id);
        if entry.arrived.len() == comm.size() {
            let state = self.collectives.remove(&comm_id).expect("just inserted");
            let release = state.last_arrival + self.cost.cost(kind, comm.size(), state.bytes);
            for r in state.arrived {
                self.states[r.0 as usize] = RankState::Runnable;
                self.queue.push(release, r);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::Dur;

    /// A world counting how much "work" each rank did.
    #[derive(Default)]
    struct CounterWorld {
        work: Vec<u64>,
    }

    fn model() -> MpiCostModel {
        MpiCostModel {
            latency: Dur::from_micros(10),
            bandwidth: 1 << 30,
        }
    }

    /// Script: do `n` compute steps of 1 s each, then finish.
    struct ComputeScript {
        remaining: u32,
    }

    impl RankScript<CounterWorld> for ComputeScript {
        fn next_step(
            &mut self,
            world: &mut CounterWorld,
            rank: RankId,
            now: SimTime,
        ) -> StepEffect {
            if self.remaining == 0 {
                return StepEffect::done();
            }
            self.remaining -= 1;
            world.work[rank.0 as usize] += 1;
            StepEffect::busy_until(now + Dur::from_secs(1))
        }
    }

    #[test]
    fn independent_ranks_run_in_parallel_virtual_time() {
        let world = CounterWorld { work: vec![0; 4] };
        let scripts: Vec<Box<dyn RankScript<CounterWorld>>> = (0..4)
            .map(|_| Box::new(ComputeScript { remaining: 3 }) as Box<_>)
            .collect();
        let mut e = Engine::new(world, scripts, model());
        let report = e.run().unwrap();
        // Each rank computes 3 s independently: makespan 3 s, not 12 s.
        assert_eq!(report.makespan, SimTime::from_secs(3));
        assert_eq!(e.world().work, vec![3, 3, 3, 3]);
        assert_eq!(report.steps, 4 * 4); // 3 computes + 1 done per rank
    }

    #[test]
    fn scheduled_crash_halts_with_typed_info() {
        let world = CounterWorld { work: vec![0; 2] };
        let scripts: Vec<Box<dyn RankScript<CounterWorld>>> = (0..2)
            .map(|_| Box::new(ComputeScript { remaining: 10 }) as Box<_>)
            .collect();
        let mut e = Engine::new(world, scripts, model());
        e.set_crash(RankId(1), SimTime::from_secs(4));
        let halt = e.run_checked().unwrap_err();
        assert_eq!(
            halt,
            RunHalt::Crashed {
                rank: RankId(1),
                at: SimTime::from_secs(4)
            }
        );
        // Work completed strictly before the crash instant survives in the
        // world: dispatches at 0–3 s ran, the 4 s dispatch was killed.
        assert_eq!(e.world().work, vec![4, 4]);
    }

    #[test]
    fn earliest_crash_wins_regardless_of_registration_order() {
        let world = CounterWorld { work: vec![0; 2] };
        let scripts: Vec<Box<dyn RankScript<CounterWorld>>> = (0..2)
            .map(|_| Box::new(ComputeScript { remaining: 10 }) as Box<_>)
            .collect();
        let mut e = Engine::new(world, scripts, model());
        e.set_crash(RankId(0), SimTime::from_secs(9));
        e.set_crash(RankId(1), SimTime::from_secs(2));
        e.set_crash(RankId(0), SimTime::from_secs(5));
        let halt = e.run_checked().unwrap_err();
        assert_eq!(
            halt,
            RunHalt::Crashed {
                rank: RankId(1),
                at: SimTime::from_secs(2)
            }
        );
    }

    #[test]
    fn launch_offset_shifts_the_whole_run() {
        // A restart epoch launches mid-clock: everything, including the
        // makespan, continues from the offset.
        let world = CounterWorld { work: vec![0; 2] };
        let scripts: Vec<Box<dyn RankScript<CounterWorld>>> = (0..2)
            .map(|_| Box::new(ComputeScript { remaining: 3 }) as Box<_>)
            .collect();
        let mut e = Engine::new_at(world, scripts, model(), SimTime::from_secs(10));
        let report = e.run().unwrap();
        assert_eq!(report.makespan, SimTime::from_secs(13));
        assert_eq!(e.world().work, vec![3, 3]);
    }

    /// Script: compute `my_time`, barrier, then finish.
    struct BarrierScript {
        compute: Dur,
        phase: u8,
    }

    impl RankScript<CounterWorld> for BarrierScript {
        fn next_step(&mut self, _w: &mut CounterWorld, _r: RankId, now: SimTime) -> StepEffect {
            self.phase += 1;
            match self.phase {
                1 => StepEffect::busy_until(now + self.compute),
                2 => StepEffect {
                    outcome: Outcome::Collective {
                        comm: CommId::WORLD,
                        kind: CollectiveKind::Barrier,
                        bytes: 0,
                    },
                    open_gates: vec![],
                },
                _ => StepEffect::done(),
            }
        }
    }

    #[test]
    fn barrier_waits_for_slowest_rank() {
        let world = CounterWorld { work: vec![0; 3] };
        let scripts: Vec<Box<dyn RankScript<CounterWorld>>> = [1u64, 5, 2]
            .iter()
            .map(|&s| {
                Box::new(BarrierScript {
                    compute: Dur::from_secs(s),
                    phase: 0,
                }) as Box<_>
            })
            .collect();
        let mut e = Engine::new(world, scripts, model());
        let report = e.run().unwrap();
        // All finish at 5 s + barrier cost (2 rounds × 10 µs).
        let expect = SimTime::from_secs(5) + Dur::from_micros(20);
        assert!(report.finish_times.iter().all(|&t| t == expect));
    }

    /// Rank 0 computes 3 s then opens a gate; rank 1 waits on the gate.
    struct ProducerScript {
        phase: u8,
    }
    struct ConsumerScript {
        phase: u8,
    }

    impl RankScript<CounterWorld> for ProducerScript {
        fn next_step(&mut self, _w: &mut CounterWorld, _r: RankId, now: SimTime) -> StepEffect {
            self.phase += 1;
            match self.phase {
                1 => StepEffect::busy_until(now + Dur::from_secs(3)),
                _ => StepEffect::done().opening([GateId(7)]),
            }
        }
    }

    impl RankScript<CounterWorld> for ConsumerScript {
        fn next_step(&mut self, w: &mut CounterWorld, _r: RankId, now: SimTime) -> StepEffect {
            self.phase += 1;
            match self.phase {
                1 => StepEffect {
                    outcome: Outcome::WaitGate(GateId(7)),
                    open_gates: vec![],
                },
                2 => {
                    w.work[1] = now.as_nanos();
                    StepEffect::busy_until(now + Dur::from_secs(1))
                }
                _ => StepEffect::done(),
            }
        }
    }

    #[test]
    fn gates_signal_across_ranks() {
        let world = CounterWorld { work: vec![0; 2] };
        let scripts: Vec<Box<dyn RankScript<CounterWorld>>> = vec![
            Box::new(ProducerScript { phase: 0 }),
            Box::new(ConsumerScript { phase: 0 }),
        ];
        let mut e = Engine::new(world, scripts, model());
        let report = e.run().unwrap();
        // Consumer resumed exactly when producer opened the gate (t = 3 s).
        assert_eq!(e.world().work[1], SimTime::from_secs(3).as_nanos());
        assert_eq!(report.makespan, SimTime::from_secs(4));
    }

    #[test]
    fn waiting_on_an_already_open_gate_resumes_immediately() {
        // Rank 0 opens the gate at t=0 and finishes; rank 1 waits at t=0 and
        // should proceed at t=0.
        struct Opener;
        impl RankScript<CounterWorld> for Opener {
            fn next_step(&mut self, _w: &mut CounterWorld, _r: RankId, _n: SimTime) -> StepEffect {
                StepEffect::done().opening([GateId(1)])
            }
        }
        struct Waiter {
            phase: u8,
        }
        impl RankScript<CounterWorld> for Waiter {
            fn next_step(&mut self, w: &mut CounterWorld, _r: RankId, now: SimTime) -> StepEffect {
                self.phase += 1;
                match self.phase {
                    1 => StepEffect::busy_until(now + Dur::from_secs(1)), // let rank 0 go first
                    2 => StepEffect {
                        outcome: Outcome::WaitGate(GateId(1)),
                        open_gates: vec![],
                    },
                    _ => {
                        w.work[1] = now.as_nanos();
                        StepEffect::done()
                    }
                }
            }
        }
        let world = CounterWorld { work: vec![0; 2] };
        let scripts: Vec<Box<dyn RankScript<CounterWorld>>> =
            vec![Box::new(Opener), Box::new(Waiter { phase: 0 })];
        let mut e = Engine::new(world, scripts, model());
        e.run().unwrap();
        assert_eq!(e.world().work[1], SimTime::from_secs(1).as_nanos());
    }

    #[test]
    fn subcommunicator_collectives_only_sync_members() {
        // Ranks 0,1 barrier on comm 1; rank 2 runs free.
        struct SubBarrier {
            phase: u8,
            in_comm: bool,
        }
        impl RankScript<CounterWorld> for SubBarrier {
            fn next_step(&mut self, w: &mut CounterWorld, r: RankId, now: SimTime) -> StepEffect {
                self.phase += 1;
                match (self.phase, self.in_comm) {
                    (1, true) => StepEffect {
                        outcome: Outcome::Collective {
                            comm: CommId(1),
                            kind: CollectiveKind::Barrier,
                            bytes: 0,
                        },
                        open_gates: vec![],
                    },
                    (1, false) => StepEffect::busy_until(now + Dur::from_secs(10)),
                    _ => {
                        w.work[r.0 as usize] = now.as_nanos();
                        StepEffect::done()
                    }
                }
            }
        }
        let world = CounterWorld { work: vec![0; 3] };
        let scripts: Vec<Box<dyn RankScript<CounterWorld>>> = vec![
            Box::new(SubBarrier {
                phase: 0,
                in_comm: true,
            }),
            Box::new(SubBarrier {
                phase: 0,
                in_comm: true,
            }),
            Box::new(SubBarrier {
                phase: 0,
                in_comm: false,
            }),
        ];
        let mut e = Engine::new(world, scripts, model());
        e.add_comm(Communicator::new(CommId(1), vec![RankId(0), RankId(1)]));
        let r = e.run().unwrap();
        // Ranks 0 and 1 finished long before rank 2's 10 s compute.
        assert!(e.world().work[0] < SimTime::from_secs(1).as_nanos());
        assert!(e.world().work[1] < SimTime::from_secs(1).as_nanos());
        assert_eq!(r.makespan, SimTime::from_secs(10));
    }

    #[test]
    fn unopened_gate_is_a_typed_deadlock() {
        struct Stuck;
        impl RankScript<CounterWorld> for Stuck {
            fn next_step(&mut self, _w: &mut CounterWorld, _r: RankId, _n: SimTime) -> StepEffect {
                StepEffect {
                    outcome: Outcome::WaitGate(GateId(99)),
                    open_gates: vec![],
                }
            }
        }
        let world = CounterWorld { work: vec![0; 1] };
        let mut e = Engine::new(world, vec![Box::new(Stuck) as Box<_>], model());
        let err = e.run().unwrap_err();
        assert_eq!(err.blocked, vec![(RankId(0), Blocker::Gate(GateId(99)))]);
        let msg = err.to_string();
        assert!(
            msg.contains("deadlock"),
            "message must name the failure: {msg}"
        );
        assert!(msg.contains("gate 99"), "message must name the gate: {msg}");
    }

    #[test]
    fn lone_collective_arrival_is_a_typed_deadlock() {
        // Rank 0 barriers on WORLD; rank 1 finishes without ever joining.
        struct Joins;
        impl RankScript<CounterWorld> for Joins {
            fn next_step(&mut self, _w: &mut CounterWorld, _r: RankId, _n: SimTime) -> StepEffect {
                StepEffect {
                    outcome: Outcome::Collective {
                        comm: CommId::WORLD,
                        kind: CollectiveKind::Barrier,
                        bytes: 0,
                    },
                    open_gates: vec![],
                }
            }
        }
        struct Bails;
        impl RankScript<CounterWorld> for Bails {
            fn next_step(&mut self, _w: &mut CounterWorld, _r: RankId, _n: SimTime) -> StepEffect {
                StepEffect::done()
            }
        }
        let world = CounterWorld { work: vec![0; 2] };
        let scripts: Vec<Box<dyn RankScript<CounterWorld>>> =
            vec![Box::new(Joins), Box::new(Bails)];
        let mut e = Engine::new(world, scripts, model());
        let err = e.run().unwrap_err();
        assert_eq!(
            err.blocked,
            vec![(RankId(0), Blocker::Collective(CommId::WORLD))]
        );
        assert!(err.to_string().contains("collective"), "diagnostic: {err}");
    }

    #[test]
    #[should_panic(expected = "max_steps")]
    fn livelock_is_caught_by_step_cap() {
        struct Spinner;
        impl RankScript<CounterWorld> for Spinner {
            fn next_step(&mut self, _w: &mut CounterWorld, _r: RankId, now: SimTime) -> StepEffect {
                StepEffect::busy_until(now + Dur::from_nanos(1))
            }
        }
        let world = CounterWorld { work: vec![0; 1] };
        let mut e = Engine::new(world, vec![Box::new(Spinner) as Box<_>], model());
        e.set_max_steps(1000);
        let _ = e.run();
    }

    #[test]
    fn fn_script_adapter_works() {
        let world = CounterWorld { work: vec![0; 1] };
        let mut fired = 0u32;
        let script = FnScript(move |_w: &mut CounterWorld, _r: RankId, now: SimTime| {
            fired += 1;
            if fired == 1 {
                StepEffect::busy_until(now + Dur::from_secs(2))
            } else {
                StepEffect::done()
            }
        });
        let mut e = Engine::new(world, vec![Box::new(script) as Box<_>], model());
        let r = e.run().unwrap();
        assert_eq!(r.makespan, SimTime::from_secs(2));
    }
}
