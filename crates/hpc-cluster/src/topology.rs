//! Node and cluster hardware specifications.
//!
//! The default preset, [`ClusterSpec::lassen`], models the paper's testbed:
//! IBM Power9 nodes with 40 usable cores, 4 V100 GPUs, 256 GB of memory, a
//! 100 Gb/s EDR InfiniBand NIC, and `/dev/shm` as the node-local tier.

use sim_core::units::{GIB, MIB};
use sim_core::Dur;
use std::fmt;
use vani_rt::{FromJson, Json, JsonError, ToJson};

/// Identifies a node within the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Identifies a process (MPI rank) within a job, numbered globally from 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RankId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

impl fmt::Display for RankId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rank{}", self.0)
    }
}

/// Hardware description of one compute node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSpec {
    /// Usable CPU cores per node.
    pub cpu_cores: u32,
    /// GPUs per node.
    pub gpus: u32,
    /// System memory in bytes.
    pub memory_bytes: u64,
    /// NIC bandwidth in bytes/second.
    pub nic_bw: u64,
    /// NIC per-message latency.
    pub nic_latency: Dur,
    /// Node-local shared-memory (tmpfs) bandwidth in bytes/second.
    pub shm_bw: u64,
    /// Node-local shared-memory access latency.
    pub shm_latency: Dur,
    /// Maximum concurrent operations the node-local storage controller
    /// sustains (Table VIII: "# parallel ops (controller)").
    pub shm_parallel_ops: u32,
}

impl NodeSpec {
    /// A Lassen-like Power9 node (paper §III-A1, Tables II/VIII).
    pub fn lassen() -> Self {
        NodeSpec {
            cpu_cores: 40,
            gpus: 4,
            memory_bytes: 256 * GIB,
            nic_bw: 12_500 * MIB, // 100 Gb/s EDR InfiniBand
            nic_latency: Dur::from_micros(5),
            shm_bw: 32 * GIB, // Table VIII: 32 GB/s max node-local I/O bandwidth
            shm_latency: Dur::from_nanos(400),
            shm_parallel_ops: 64, // Table VIII: 64 parallel controller ops
        }
    }
}

impl ToJson for NodeSpec {
    fn to_json(&self) -> Json {
        Json::obj([
            ("cpu_cores", self.cpu_cores.to_json()),
            ("gpus", self.gpus.to_json()),
            ("memory_bytes", self.memory_bytes.to_json()),
            ("nic_bw", self.nic_bw.to_json()),
            ("nic_latency", self.nic_latency.to_json()),
            ("shm_bw", self.shm_bw.to_json()),
            ("shm_latency", self.shm_latency.to_json()),
            ("shm_parallel_ops", self.shm_parallel_ops.to_json()),
        ])
    }
}

impl FromJson for NodeSpec {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(NodeSpec {
            cpu_cores: j.decode_field("cpu_cores")?,
            gpus: j.decode_field("gpus")?,
            memory_bytes: j.decode_field("memory_bytes")?,
            nic_bw: j.decode_field("nic_bw")?,
            nic_latency: j.decode_field("nic_latency")?,
            shm_bw: j.decode_field("shm_bw")?,
            shm_latency: j.decode_field("shm_latency")?,
            shm_parallel_ops: j.decode_field("shm_parallel_ops")?,
        })
    }
}

/// Description of an entire cluster: homogeneous nodes plus fabric limits.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    /// Human-readable name ("lassen").
    pub name: String,
    /// Total nodes in the machine.
    pub total_nodes: u32,
    /// Per-node hardware.
    pub node: NodeSpec,
}

impl ClusterSpec {
    /// The paper's testbed: Lassen, 795 nodes (§III-A1).
    pub fn lassen() -> Self {
        ClusterSpec {
            name: "lassen".to_string(),
            total_nodes: 795,
            node: NodeSpec::lassen(),
        }
    }

    /// A small synthetic cluster for fast unit tests.
    pub fn tiny(nodes: u32, cores: u32) -> Self {
        ClusterSpec {
            name: "tiny".to_string(),
            total_nodes: nodes,
            node: NodeSpec {
                cpu_cores: cores,
                gpus: 1,
                memory_bytes: 16 * GIB,
                nic_bw: 1 * GIB,
                nic_latency: Dur::from_micros(2),
                shm_bw: 8 * GIB,
                shm_latency: Dur::from_nanos(300),
                shm_parallel_ops: 8,
            },
        }
    }
}

impl ToJson for ClusterSpec {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", self.name.to_json()),
            ("total_nodes", self.total_nodes.to_json()),
            ("node", self.node.to_json()),
        ])
    }
}

impl FromJson for ClusterSpec {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(ClusterSpec {
            name: j.decode_field("name")?,
            total_nodes: j.decode_field("total_nodes")?,
            node: j.decode_field("node")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lassen_matches_paper_parameters() {
        let c = ClusterSpec::lassen();
        assert_eq!(c.total_nodes, 795);
        assert_eq!(c.node.cpu_cores, 40);
        assert_eq!(c.node.gpus, 4);
        assert_eq!(c.node.memory_bytes, 256 * GIB);
        assert_eq!(c.node.shm_parallel_ops, 64);
        assert_eq!(c.node.shm_bw, 32 * GIB);
    }

    #[test]
    fn ids_display() {
        assert_eq!(NodeId(3).to_string(), "node3");
        assert_eq!(RankId(1279).to_string(), "rank1279");
    }

    #[test]
    fn spec_json_round_trip() {
        let c = ClusterSpec::lassen();
        let json = vani_rt::json::to_string(&c);
        let back: ClusterSpec = vani_rt::json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
