//! Communicators and an analytic MPI collective cost model.
//!
//! The simulation does not move real messages; collectives are modeled with
//! the standard log-tree latency/bandwidth formulas (Hockney-style), which is
//! enough to reproduce the synchronization and aggregation delays the paper
//! attributes to collective I/O.

use crate::topology::{NodeSpec, RankId};
use sim_core::Dur;

/// Identifies a communicator. Communicator 0 is always `MPI_COMM_WORLD`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CommId(pub u32);

impl CommId {
    /// The world communicator.
    pub const WORLD: CommId = CommId(0);
}

/// A group of ranks that synchronize together.
#[derive(Debug, Clone, PartialEq)]
pub struct Communicator {
    /// This communicator's id.
    pub id: CommId,
    /// Member ranks (sorted, unique).
    pub ranks: Vec<RankId>,
}

impl Communicator {
    /// Build a communicator over the given ranks.
    pub fn new(id: CommId, mut ranks: Vec<RankId>) -> Self {
        ranks.sort_unstable();
        ranks.dedup();
        assert!(!ranks.is_empty(), "communicator must have members");
        Communicator { id, ranks }
    }

    /// Number of member ranks.
    pub fn size(&self) -> usize {
        self.ranks.len()
    }

    /// Whether a rank belongs to this communicator.
    pub fn contains(&self, r: RankId) -> bool {
        self.ranks.binary_search(&r).is_ok()
    }

    /// The lowest-numbered member, the conventional root.
    pub fn root(&self) -> RankId {
        self.ranks[0]
    }
}

/// The collective operations the engine models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollectiveKind {
    /// Pure synchronization.
    Barrier,
    /// Root sends `bytes` to every member.
    Bcast,
    /// Every member sends `bytes` to the root.
    Gather,
    /// Reduction of `bytes` across members, result everywhere.
    AllReduce,
    /// Every member exchanges `bytes` with every other member.
    AllToAll,
}

/// Hockney-style analytic cost model for collectives.
#[derive(Debug, Clone, PartialEq)]
pub struct MpiCostModel {
    /// Per-message fabric latency.
    pub latency: Dur,
    /// Per-link bandwidth in bytes/second.
    pub bandwidth: u64,
}

impl MpiCostModel {
    /// Derive the model from node hardware.
    pub fn from_node(node: &NodeSpec) -> Self {
        MpiCostModel {
            latency: node.nic_latency,
            bandwidth: node.nic_bw,
        }
    }

    fn log2_ceil(n: usize) -> u64 {
        debug_assert!(n >= 1);
        (usize::BITS - (n - 1).leading_zeros()) as u64
    }

    /// Time from the moment the last rank arrives until the collective
    /// completes for all ranks.
    pub fn cost(&self, kind: CollectiveKind, comm_size: usize, bytes: u64) -> Dur {
        if comm_size <= 1 {
            return Dur::ZERO;
        }
        let rounds = Self::log2_ceil(comm_size);
        let hop = |b: u64| self.latency + Dur::for_transfer(b, self.bandwidth);
        match kind {
            CollectiveKind::Barrier => self.latency * rounds,
            CollectiveKind::Bcast => hop(bytes) * rounds,
            // Gather serializes (n-1) messages into the root's link.
            CollectiveKind::Gather => {
                self.latency * rounds
                    + Dur::for_transfer(bytes * (comm_size as u64 - 1), self.bandwidth)
            }
            CollectiveKind::AllReduce => hop(bytes) * (2 * rounds),
            // Pairwise exchange: n-1 rounds each moving `bytes`.
            CollectiveKind::AllToAll => hop(bytes) * (comm_size as u64 - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> MpiCostModel {
        MpiCostModel {
            latency: Dur::from_micros(5),
            bandwidth: 1 << 30, // 1 GiB/s
        }
    }

    #[test]
    fn communicator_dedups_and_sorts() {
        let c = Communicator::new(CommId(1), vec![RankId(3), RankId(1), RankId(3)]);
        assert_eq!(c.ranks, vec![RankId(1), RankId(3)]);
        assert_eq!(c.size(), 2);
        assert_eq!(c.root(), RankId(1));
        assert!(c.contains(RankId(3)));
        assert!(!c.contains(RankId(2)));
    }

    #[test]
    fn singleton_collectives_are_free() {
        let m = model();
        for kind in [
            CollectiveKind::Barrier,
            CollectiveKind::Bcast,
            CollectiveKind::Gather,
            CollectiveKind::AllReduce,
            CollectiveKind::AllToAll,
        ] {
            assert_eq!(m.cost(kind, 1, 1 << 20), Dur::ZERO);
        }
    }

    #[test]
    fn barrier_scales_logarithmically() {
        let m = model();
        let b2 = m.cost(CollectiveKind::Barrier, 2, 0);
        let b1024 = m.cost(CollectiveKind::Barrier, 1024, 0);
        assert_eq!(b2, Dur::from_micros(5));
        assert_eq!(b1024, Dur::from_micros(50)); // log2(1024) = 10 rounds
    }

    #[test]
    fn bcast_moves_bytes_per_round() {
        let m = model();
        // 1 GiB over 1 GiB/s = 1 s per hop; 4 ranks = 2 rounds.
        let c = m.cost(CollectiveKind::Bcast, 4, 1 << 30);
        let expect = (Dur::from_micros(5) + Dur::from_secs(1)) * 2;
        assert_eq!(c, expect);
    }

    #[test]
    fn gather_serializes_at_root() {
        let m = model();
        // 8 ranks gathering 1 MiB each: root receives 7 MiB.
        let c = m.cost(CollectiveKind::Gather, 8, 1 << 20);
        let xfer = Dur::for_transfer(7 << 20, 1 << 30);
        assert_eq!(c, Dur::from_micros(15) + xfer);
    }

    #[test]
    fn allreduce_is_twice_bcast_shape() {
        let m = model();
        let ar = m.cost(CollectiveKind::AllReduce, 16, 4096);
        let bc = m.cost(CollectiveKind::Bcast, 16, 4096);
        assert_eq!(ar, bc * 2);
    }

    #[test]
    fn log2_ceil_values() {
        assert_eq!(MpiCostModel::log2_ceil(1), 0);
        assert_eq!(MpiCostModel::log2_ceil(2), 1);
        assert_eq!(MpiCostModel::log2_ceil(3), 2);
        assert_eq!(MpiCostModel::log2_ceil(1280), 11);
    }
}
