//! Job allocations: the scheduler-facing view of a workload.
//!
//! A [`JobSpec`] is what the user submits (node count, processes per node,
//! wall-time request, storage directories); a [`JobAlloc`] is the concrete
//! placement the scheduler grants, providing the rank-to-node map every
//! other layer uses.

use crate::topology::{ClusterSpec, NodeId, RankId};
use sim_core::Dur;

/// A job submission: resources requested and storage locations used.
/// Mirrors the paper's job-configuration entity (Table II).
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Nodes requested.
    pub nodes: u32,
    /// Processes (ranks) per node.
    pub ranks_per_node: u32,
    /// Requested wall time.
    pub walltime: Dur,
    /// Node-local burst-buffer directory (e.g. "/dev/shm"), if any.
    pub node_local_bb_dir: Option<String>,
    /// Shared burst-buffer directory, if any (Lassen has none).
    pub shared_bb_dir: Option<String>,
    /// Parallel-file-system directory (e.g. "/p/gpfs1").
    pub pfs_dir: String,
}

impl JobSpec {
    /// A Lassen-style job: `/dev/shm` node-local, no shared BB, GPFS at
    /// `/p/gpfs1` (Table II).
    pub fn lassen(nodes: u32, ranks_per_node: u32, walltime: Dur) -> Self {
        JobSpec {
            nodes,
            ranks_per_node,
            walltime,
            node_local_bb_dir: Some("/dev/shm".to_string()),
            shared_bb_dir: None,
            pfs_dir: "/p/gpfs1".to_string(),
        }
    }

    /// Total ranks in the job.
    pub fn total_ranks(&self) -> u32 {
        self.nodes * self.ranks_per_node
    }
}

/// A granted allocation: nodes held and the rank placement.
///
/// Ranks are placed block-wise: ranks `[i*rpn, (i+1)*rpn)` live on the job's
/// `i`-th node, matching typical `jsrun`/`srun` defaults and the paper's
/// observation that "every first rank per node (i.e. 40, 80, …, 1240)"
/// performs node-level duties in CM1.
#[derive(Debug, Clone, PartialEq)]
pub struct JobAlloc {
    /// The submitted spec.
    pub spec: JobSpec,
    /// Nodes granted, in rank-placement order.
    pub nodes: Vec<NodeId>,
}

impl JobAlloc {
    /// Allocate the first `spec.nodes` nodes of the cluster.
    ///
    /// # Panics
    /// Panics if the cluster is smaller than the request — the caller sized
    /// the experiment wrong, which should fail loudly.
    pub fn allocate(cluster: &ClusterSpec, spec: JobSpec) -> Self {
        assert!(
            spec.nodes <= cluster.total_nodes,
            "job wants {} nodes but {} has {}",
            spec.nodes,
            cluster.name,
            cluster.total_nodes
        );
        assert!(
            spec.ranks_per_node <= cluster.node.cpu_cores,
            "job wants {} ranks/node but nodes have {} cores",
            spec.ranks_per_node,
            cluster.node.cpu_cores
        );
        let nodes = (0..spec.nodes).map(NodeId).collect();
        JobAlloc { spec, nodes }
    }

    /// Total ranks in the job.
    pub fn total_ranks(&self) -> u32 {
        self.spec.total_ranks()
    }

    /// The node a rank runs on.
    pub fn node_of(&self, rank: RankId) -> NodeId {
        let idx = (rank.0 / self.spec.ranks_per_node) as usize;
        self.nodes[idx]
    }

    /// The rank's index within its node (`0..ranks_per_node`).
    pub fn local_rank(&self, rank: RankId) -> u32 {
        rank.0 % self.spec.ranks_per_node
    }

    /// Whether this rank is the first on its node ("node leader").
    pub fn is_node_leader(&self, rank: RankId) -> bool {
        self.local_rank(rank) == 0
    }

    /// All ranks on a given node, in order.
    pub fn ranks_on(&self, node: NodeId) -> Vec<RankId> {
        let idx = self
            .nodes
            .iter()
            .position(|&n| n == node)
            .expect("node not in allocation");
        let rpn = self.spec.ranks_per_node;
        let base = idx as u32 * rpn;
        (base..base + rpn).map(RankId).collect()
    }

    /// Iterate all ranks in the job.
    pub fn ranks(&self) -> impl Iterator<Item = RankId> {
        (0..self.total_ranks()).map(RankId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc_32x40() -> JobAlloc {
        JobAlloc::allocate(
            &ClusterSpec::lassen(),
            JobSpec::lassen(32, 40, Dur::from_secs(7200)),
        )
    }

    #[test]
    fn block_placement_matches_paper() {
        let a = alloc_32x40();
        assert_eq!(a.total_ranks(), 1280);
        assert_eq!(a.node_of(RankId(0)), NodeId(0));
        assert_eq!(a.node_of(RankId(39)), NodeId(0));
        assert_eq!(a.node_of(RankId(40)), NodeId(1));
        assert_eq!(a.node_of(RankId(1279)), NodeId(31));
        // The paper's CM1 node leaders: ranks 0, 40, 80, ..., 1240.
        for leader in (0..1280).step_by(40) {
            assert!(a.is_node_leader(RankId(leader)));
        }
        assert!(!a.is_node_leader(RankId(41)));
    }

    #[test]
    fn ranks_on_node_are_contiguous() {
        let a = alloc_32x40();
        let r = a.ranks_on(NodeId(2));
        assert_eq!(r.len(), 40);
        assert_eq!(r[0], RankId(80));
        assert_eq!(r[39], RankId(119));
    }

    #[test]
    fn lassen_job_spec_dirs() {
        let s = JobSpec::lassen(4, 2, Dur::from_secs(60));
        assert_eq!(s.node_local_bb_dir.as_deref(), Some("/dev/shm"));
        assert_eq!(s.shared_bb_dir, None);
        assert_eq!(s.pfs_dir, "/p/gpfs1");
        assert_eq!(s.total_ranks(), 8);
    }

    #[test]
    #[should_panic(expected = "job wants")]
    fn oversubscribed_cores_panic() {
        JobAlloc::allocate(
            &ClusterSpec::tiny(2, 4),
            JobSpec::lassen(2, 8, Dur::from_secs(1)),
        );
    }
}
