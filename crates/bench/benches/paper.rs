//! Benches that regenerate the paper's artifacts: one bench per table
//! group and figure. Each measures the full pipeline (simulate → trace →
//! analyze → render) at a small scale, so `cargo bench` both exercises and
//! times every experiment in the index.
//!
//! By default these run on the built-in wall-clock harness so the workspace
//! benches build offline; enable the `external-bench` feature (after
//! vendoring criterion) for statistical timing.

#[cfg(not(feature = "external-bench"))]
use bench::harness::{criterion_group, criterion_main, Criterion};
#[cfg(feature = "external-bench")]
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vani_core::analyzer::Analysis;
use vani_core::{reconfig, tables};

/// Small scale so a bench iteration stays in the tens of milliseconds.
const S: f64 = 0.01;

fn bench_workload_characterization(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures_1_to_6_characterize");
    g.sample_size(10);
    g.bench_function("fig1_cm1", |b| {
        b.iter(|| Analysis::from_run(&exemplar_workloads::cm1::run(black_box(S), 7)))
    });
    g.bench_function("fig2_hacc", |b| {
        b.iter(|| Analysis::from_run(&exemplar_workloads::hacc::run(black_box(S), 7)))
    });
    g.bench_function("fig3_cosmoflow", |b| {
        b.iter(|| Analysis::from_run(&exemplar_workloads::cosmoflow::run(black_box(S / 5.0), 7)))
    });
    g.bench_function("fig4_jag", |b| {
        b.iter(|| Analysis::from_run(&exemplar_workloads::jag::run(black_box(S), 7)))
    });
    g.bench_function("fig5_montage_mpi", |b| {
        b.iter(|| Analysis::from_run(&exemplar_workloads::montage::run(black_box(S), 7)))
    });
    g.bench_function("fig6_montage_pegasus", |b| {
        b.iter(|| Analysis::from_run(&exemplar_workloads::montage_pegasus::run(black_box(S), 7)))
    });
    g.finish();
}

fn bench_tables(c: &mut Criterion) {
    // Run the workloads once; the tables bench measures attribute
    // extraction + rendering over the fixed runs.
    let analyses: Vec<Analysis> = vec![
        Analysis::from_run(&exemplar_workloads::cm1::run(S, 7)),
        Analysis::from_run(&exemplar_workloads::hacc::run(S, 7)),
        Analysis::from_run(&exemplar_workloads::jag::run(S, 7)),
    ];
    let cols: Vec<&Analysis> = analyses.iter().collect();
    let mut g = c.benchmark_group("tables_1_to_11_render");
    g.bench_function("table1", |b| {
        b.iter(|| tables::table1(black_box(&cols)).render())
    });
    g.bench_function("table3", |b| {
        b.iter(|| tables::table3(black_box(&cols)).render())
    });
    g.bench_function("table5_phases", |b| {
        b.iter(|| tables::table5(black_box(&cols)).render())
    });
    g.bench_function("table6_highlevel", |b| {
        b.iter(|| tables::table6(black_box(&cols)).render())
    });
    g.bench_function("table10_dataset", |b| {
        b.iter(|| tables::table10(black_box(&cols)).render())
    });
    g.bench_function("table11_file", |b| {
        b.iter(|| tables::table11(black_box(&cols)).render())
    });
    g.finish();
}

fn bench_use_cases(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures_7_8_use_cases");
    g.sample_size(10);
    g.bench_function("fig7_point_8nodes", |b| {
        b.iter(|| reconfig::figure7(black_box(0.01), &[8], 7))
    });
    g.bench_function("fig8_point_8nodes", |b| {
        b.iter(|| reconfig::figure8(black_box(0.05), &[8], 7))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_workload_characterization,
    bench_tables,
    bench_use_cases
);
criterion_main!(benches);
