//! Ablation benches for the design choices DESIGN.md calls out: the §IV-D
//! mapping rules evaluated empirically by sweeping one storage knob at a
//! time and measuring the resulting simulated I/O completion time.

// Built-in wall-clock harness by default; the `external-bench` feature
// switches to real criterion (requires vendoring it — see DESIGN.md).
#[cfg(not(feature = "external-bench"))]
use bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
#[cfg(feature = "external-bench")]
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpc_cluster::topology::RankId;
use io_layers::hdf5::{self, H5Options};
use io_layers::posix::{self, OpenFlags};
use io_layers::world::IoWorld;
use sim_core::units::{KIB, MIB};
use sim_core::{Dur, SimTime};

/// Stripe-size sweep (§IV-D3): simulated completion time of a 64 MiB
/// sequential write under different PFS block sizes.
fn ablation_stripe_size(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_stripe_size");
    for block in [1u64 * MIB, 4 * MIB, 8 * MIB, 16 * MIB] {
        g.bench_with_input(
            BenchmarkId::from_parameter(block / MIB),
            &block,
            |b, &block| {
                b.iter(|| {
                    let mut w = IoWorld::lassen(2, 2, Dur::from_secs(600), 3);
                    let mut cfg = w.storage.pfs().config().clone();
                    cfg.block_size = block;
                    cfg.client_cache_bytes = 0;
                    w.storage.pfs_mut().set_config(cfg).unwrap();
                    let r = RankId(0);
                    let (fd, t) = posix::open(
                        &mut w,
                        r,
                        "/p/gpfs1/s.bin",
                        OpenFlags::write_create(),
                        SimTime::ZERO,
                    );
                    let fd = fd.unwrap();
                    let mut t = t;
                    for _ in 0..4 {
                        let (_, t2) = posix::write_pattern(&mut w, r, fd, 16 * MIB, 1, t);
                        t = t2;
                    }
                    t.as_secs_f64()
                })
            },
        );
    }
    g.finish();
}

/// Chunk-cache sweep (§IV-D5): repeated reads over a chunked HDF5 dataset
/// with different cache capacities.
fn ablation_chunk_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_chunk_cache");
    for cache in [4u64 * KIB, 256 * KIB, 4 * MIB] {
        g.bench_with_input(
            BenchmarkId::from_parameter(cache / KIB),
            &cache,
            |b, &cache| {
                b.iter(|| {
                    let mut w = IoWorld::lassen(1, 1, Dur::from_secs(600), 3);
                    hdf5::materialize(
                        w.storage.pfs_mut().store_mut(),
                        "/p/gpfs1/c.h5",
                        &[("d", &[1 << 20, 1, 1], 2, Some(64 * KIB))],
                        9,
                    )
                    .unwrap();
                    let r = RankId(0);
                    let opts = H5Options {
                        use_mpiio: false,
                        chunk_cache_bytes: cache,
                    };
                    let (f, t) = hdf5::open(&mut w, r, "/p/gpfs1/c.h5", opts, SimTime::ZERO);
                    let mut f = f.unwrap();
                    let mut t = t;
                    // Two sweeps: the second hits (or misses) the cache.
                    for _ in 0..2 {
                        for i in 0..16u64 {
                            let (_, t2) = f.read(&mut w, r, "d", i * 64 * KIB, 64 * KIB, t);
                            t = t2;
                        }
                    }
                    t.as_secs_f64()
                })
            },
        );
    }
    g.finish();
}

/// Tier comparison (§V): 4 KiB ops against the PFS vs node-local shm.
fn ablation_tier_small_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_small_op_tier");
    for (name, path) in [("gpfs", "/p/gpfs1/t.bin"), ("shm", "/dev/shm/t.bin")] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &path, |b, &path| {
            b.iter(|| {
                let mut w = IoWorld::lassen(1, 1, Dur::from_secs(600), 3);
                let mut cfg = w.storage.pfs().config().clone();
                cfg.client_cache_bytes = 0;
                w.storage.pfs_mut().set_config(cfg).unwrap();
                let r = RankId(0);
                let (fd, t) =
                    posix::open(&mut w, r, path, OpenFlags::write_create(), SimTime::ZERO);
                let fd = fd.unwrap();
                let mut t = t;
                for _ in 0..256 {
                    let (_, t2) = posix::write_pattern(&mut w, r, fd, 4 * KIB, 1, t);
                    t = t2;
                }
                t.as_secs_f64()
            })
        });
    }
    g.finish();
}

/// Collective-buffering sweep (§IV-D1): aggregator count for a collective
/// read over a shared extent.
fn ablation_cb_nodes(c: &mut Criterion) {
    use io_layers::mpiio::{self, MpiIoHints};
    let mut g = c.benchmark_group("ablation_cb_nodes");
    for cb in [1u32, 4, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(cb), &cb, |b, &cb| {
            b.iter(|| {
                let mut w = IoWorld::lassen(4, 4, Dur::from_secs(600), 3);
                let r = RankId(0);
                let (fd, t) = mpiio::open(
                    &mut w,
                    r,
                    "/p/gpfs1/cb.bin",
                    OpenFlags::write_create(),
                    SimTime::ZERO,
                );
                let fd = fd.unwrap();
                let (_, t) = mpiio::write_at(&mut w, r, fd, 0, 64 * MIB, 1, t);
                let hints = MpiIoHints {
                    cb_nodes: Some(cb),
                    cb_buffer_size: 4 * MIB,
                };
                let mut end = t;
                for rank_idx in 0..16u32 {
                    let role = mpiio::plan_collective(rank_idx, 16, 4, (0, 64 * MIB), &hints);
                    let rr = RankId(rank_idx);
                    let (fd_r, t_open) =
                        mpiio::open(&mut w, rr, "/p/gpfs1/cb.bin", OpenFlags::read_only(), t);
                    let (_, t_done) = mpiio::collective_read_part(
                        &mut w,
                        rr,
                        fd_r.unwrap(),
                        &role,
                        &hints,
                        t_open,
                    );
                    end = end.max(t_done);
                }
                end.as_secs_f64()
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    ablation_stripe_size,
    ablation_chunk_cache,
    ablation_tier_small_ops,
    ablation_cb_nodes
);
criterion_main!(benches);
