//! End-to-end pipeline benchmark: simulate + capture + analyze, driven by
//! the scenario-parallel sweep driver at several worker counts.
//!
//! Invoked as `repro -- bench-pipeline [--short]`; writes
//! `BENCH_pipeline.json` at the repository root. Two measurements:
//!
//! 1. **Scenario fan-out** — the paper-six characterization and the full
//!    fault sweep, run sequentially and with the parallel driver at 1, 2,
//!    and 8 workers. Every configuration's rendered tables, entity YAML,
//!    and fault report are asserted **byte-identical** to the sequential
//!    reference; any divergence aborts the benchmark (ci.sh relies on
//!    this). Wall-clock speedup is whatever the host's cores can deliver —
//!    the JSON records `host_cores` so single-core CI numbers are not
//!    mistaken for the architecture's ceiling.
//! 2. **Capture path** — the direct-to-columnar sink against an emulation
//!    of the old row-major path (materialize `TraceRecord` rows, then
//!    transpose into `ColumnarTrace`), on every paper workload's captured
//!    trace, with and without the fused analysis that consumes it.

use std::time::Instant;

use recorder_sim::ColumnarTrace;
use vani_core::analyzer::{Analysis, TraceProfile};
use vani_core::sweep::{self, Driver};
use vani_core::{tables, yaml};
use vani_rt::json::Json;
use vani_rt::par;

/// Render everything the paper-six fan-out feeds: the attribute tables
/// with the widest coverage plus the full entity YAML for all six runs.
fn render_paper_six(analyses: &[Analysis]) -> String {
    let cols: Vec<&Analysis> = analyses.iter().collect();
    let mut out = String::new();
    out.push_str(&tables::table1(&cols).render());
    out.push_str(&tables::table3(&cols).render());
    out.push_str(&tables::table6(&cols).render());
    for a in &cols {
        out.push_str(&yaml::emit(&tables::entities_for(a)));
    }
    out
}

/// One end-to-end configuration measurement.
struct ConfigResult {
    name: &'static str,
    workers: usize,
    paper_six_ns: u64,
    fault_sweep_ns: u64,
}

impl ConfigResult {
    fn total_ns(&self) -> u64 {
        self.paper_six_ns + self.fault_sweep_ns
    }
}

/// Run one configuration `samples` times (best-of) and return its timings
/// plus the rendered outputs for the byte-identity check.
fn measure_config(
    name: &'static str,
    driver: Driver,
    workers: usize,
    scale: f64,
    fault_scale: f64,
    samples: usize,
) -> (ConfigResult, String, String) {
    par::set_threads(workers.max(1));
    let mut best_six = u64::MAX;
    let mut best_sweep = u64::MAX;
    let mut six_render = String::new();
    let mut sweep_render = String::new();
    for s in 0..samples {
        let t0 = Instant::now();
        let analyses = sweep::paper_six(scale, 7, driver);
        let six_ns = t0.elapsed().as_nanos() as u64;
        let t1 = Instant::now();
        let report = sweep::fault_sweep(fault_scale, 7, 20.0, driver);
        let sweep_ns = t1.elapsed().as_nanos() as u64;

        let six = render_paper_six(&analyses);
        let sw = report.render();
        if s == 0 {
            six_render = six;
            sweep_render = sw;
        } else {
            assert_eq!(
                six, six_render,
                "{name}: paper-six output changed between samples"
            );
            assert_eq!(
                sw, sweep_render,
                "{name}: fault-sweep output changed between samples"
            );
        }
        best_six = best_six.min(six_ns);
        best_sweep = best_sweep.min(sweep_ns);
    }
    par::set_threads(0);
    (
        ConfigResult {
            name,
            workers,
            paper_six_ns: best_six,
            fault_sweep_ns: best_sweep,
        },
        six_render,
        sweep_render,
    )
}

/// Best-of-`samples` wall time with one warm-up; returns (result, ns).
fn time_best<T: PartialEq + std::fmt::Debug, F: Fn() -> T>(samples: usize, f: F) -> (T, u64) {
    let reference = f();
    let mut best = u64::MAX;
    for _ in 0..samples {
        let t0 = Instant::now();
        let v = std::hint::black_box(f());
        best = best.min(t0.elapsed().as_nanos() as u64);
        assert_eq!(v, reference, "result changed between samples");
    }
    (reference, best)
}

/// One workload's capture-path measurement.
struct CaptureResult {
    name: &'static str,
    records: usize,
    /// Emulated old path: materialize rows, transpose to columns.
    legacy_ns: u64,
    /// Direct sink: clone the already-columnar capture.
    direct_ns: u64,
    /// Old path + fused analysis of the result.
    legacy_analyze_ns: u64,
    /// Direct path + fused analysis of the result.
    direct_analyze_ns: u64,
}

fn measure_capture(
    name: &'static str,
    run: &exemplar_workloads::WorkloadRun,
    samples: usize,
) -> CaptureResult {
    let t = &run.world.tracer;
    let legacy = || {
        // What capture used to hand the analyzer: a row-major record
        // vector reshaped into columns.
        let rows = t.records();
        ColumnarTrace::from_records(&rows, t.file_paths().to_vec(), t.app_names().to_vec())
    };
    let direct = || t.to_columnar();
    let (c_legacy, legacy_ns) = time_best(samples, legacy);
    let (c_direct, direct_ns) = time_best(samples, direct);
    assert_eq!(
        c_legacy, c_direct,
        "{name}: legacy and direct capture paths diverged"
    );
    let rt = run.runtime();
    let (_, legacy_analyze_ns) = time_best(samples, || TraceProfile::fused(&legacy(), rt));
    let (_, direct_analyze_ns) = time_best(samples, || TraceProfile::fused(&direct(), rt));
    CaptureResult {
        name,
        records: t.len(),
        legacy_ns,
        direct_ns,
        legacy_analyze_ns,
        direct_analyze_ns,
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    num as f64 / den.max(1) as f64
}

/// Run the pipeline benchmark and write `BENCH_pipeline.json`.
pub fn run_bench(short: bool) {
    let samples = if short { 1 } else { 2 };
    let scale = if short { 0.01 } else { 0.05 };
    let fault_scale = 0.02;
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    eprintln!(
        "pipeline bench: paper-six + fault sweep, scale {scale}/{fault_scale}, \
         {samples} sample(s), host has {host_cores} core(s)"
    );

    // End-to-end fan-out at each configuration; sequential is the
    // byte-identity reference.
    let configs: [(&'static str, Driver, usize); 4] = [
        ("sequential", Driver::Sequential, 1),
        ("parallel-1", Driver::Parallel, 1),
        ("parallel-2", Driver::Parallel, 2),
        ("parallel-8", Driver::Parallel, 8),
    ];
    let mut results: Vec<ConfigResult> = Vec::new();
    let mut ref_six = String::new();
    let mut ref_sweep = String::new();
    for (name, driver, workers) in configs {
        let (r, six, sw) = measure_config(name, driver, workers, scale, fault_scale, samples);
        if results.is_empty() {
            ref_six = six;
            ref_sweep = sw;
        } else {
            assert_eq!(
                six, ref_six,
                "{name}: paper-six output diverged from sequential"
            );
            assert_eq!(
                sw, ref_sweep,
                "{name}: fault-sweep output diverged from sequential"
            );
        }
        eprintln!(
            "  {:<11} ({} workers): paper-six {:>8.2} ms, fault-sweep {:>8.2} ms, total {:>8.2} ms",
            r.name,
            r.workers,
            r.paper_six_ns as f64 / 1e6,
            r.fault_sweep_ns as f64 / 1e6,
            r.total_ns() as f64 / 1e6,
        );
        results.push(r);
    }
    let seq_total = results[0].total_ns();
    let par8_total = results[3].total_ns();
    eprintln!(
        "  8-worker speedup vs sequential: {:.2}x (outputs byte-identical across all configs)",
        ratio(seq_total, par8_total)
    );

    // Capture path, single worker: the direct-to-columnar sink against the
    // emulated row-major path, per workload.
    par::set_threads(1);
    let cap_samples = if short { 3 } else { 5 };
    let runs: Vec<(&'static str, exemplar_workloads::WorkloadRun)> = vec![
        ("cm1", exemplar_workloads::cm1::run(scale, 7)),
        ("hacc", exemplar_workloads::hacc::run(scale, 7)),
        (
            "cosmoflow",
            exemplar_workloads::cosmoflow::run(scale / 10.0, 7),
        ),
        ("jag", exemplar_workloads::jag::run(scale, 7)),
        ("montage", exemplar_workloads::montage::run(scale, 7)),
        (
            "montage_pegasus",
            exemplar_workloads::montage_pegasus::run(scale, 7),
        ),
    ];
    let mut captures = Vec::new();
    for (name, run) in &runs {
        let c = measure_capture(name, run, cap_samples);
        eprintln!(
            "  capture {name:>16} ({:>7} records): rows+transpose {:>8.3} ms, direct {:>8.3} ms \
             ({:>5.2}x; with analysis {:>5.2}x)",
            c.records,
            c.legacy_ns as f64 / 1e6,
            c.direct_ns as f64 / 1e6,
            ratio(c.legacy_ns, c.direct_ns),
            ratio(c.legacy_analyze_ns, c.direct_analyze_ns),
        );
        captures.push(c);
    }
    par::set_threads(0);
    let legacy_total: u64 = captures.iter().map(|c| c.legacy_ns).sum();
    let direct_total: u64 = captures.iter().map(|c| c.direct_ns).sum();
    let legacy_an_total: u64 = captures.iter().map(|c| c.legacy_analyze_ns).sum();
    let direct_an_total: u64 = captures.iter().map(|c| c.direct_analyze_ns).sum();
    eprintln!(
        "  capture totals: materialization {:.2}x, capture+analysis {:.2}x",
        ratio(legacy_total, direct_total),
        ratio(legacy_an_total, direct_an_total),
    );

    let json = Json::obj([
        (
            "config",
            Json::obj([
                (
                    "mode",
                    Json::Str(if short { "short" } else { "full" }.into()),
                ),
                ("scale", Json::Float(scale)),
                ("fault_scale", Json::Float(fault_scale)),
                ("samples", Json::Int(samples as i128)),
                ("capture_samples", Json::Int(cap_samples as i128)),
                ("host_cores", Json::Int(host_cores as i128)),
                ("timing", Json::Str("best-of wall clock".into())),
            ]),
        ),
        (
            "end_to_end",
            Json::Arr(
                results
                    .iter()
                    .map(|r| {
                        Json::obj([
                            ("config", Json::Str(r.name.into())),
                            ("workers", Json::Int(r.workers as i128)),
                            ("paper_six_ns", Json::Int(r.paper_six_ns as i128)),
                            ("fault_sweep_ns", Json::Int(r.fault_sweep_ns as i128)),
                            ("total_ns", Json::Int(r.total_ns() as i128)),
                            (
                                "speedup_vs_sequential",
                                Json::Float(ratio(seq_total, r.total_ns())),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("byte_identical_across_configs", Json::Bool(true)),
        (
            "capture",
            Json::obj([
                (
                    "workloads",
                    Json::Arr(
                        captures
                            .iter()
                            .map(|c| {
                                Json::obj([
                                    ("name", Json::Str(c.name.into())),
                                    ("records", Json::Int(c.records as i128)),
                                    ("legacy_ns", Json::Int(c.legacy_ns as i128)),
                                    ("direct_ns", Json::Int(c.direct_ns as i128)),
                                    ("speedup", Json::Float(ratio(c.legacy_ns, c.direct_ns))),
                                    ("legacy_analyze_ns", Json::Int(c.legacy_analyze_ns as i128)),
                                    ("direct_analyze_ns", Json::Int(c.direct_analyze_ns as i128)),
                                    (
                                        "analyze_speedup",
                                        Json::Float(ratio(
                                            c.legacy_analyze_ns,
                                            c.direct_analyze_ns,
                                        )),
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("total_legacy_ns", Json::Int(legacy_total as i128)),
                ("total_direct_ns", Json::Int(direct_total as i128)),
                (
                    "materialization_speedup",
                    Json::Float(ratio(legacy_total, direct_total)),
                ),
                (
                    "capture_plus_analysis_speedup",
                    Json::Float(ratio(legacy_an_total, direct_an_total)),
                ),
            ]),
        ),
    ]);

    let out = format!("{}\n", json.render());
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");
    std::fs::write(path, out).expect("write BENCH_pipeline.json");
    eprintln!("wrote {path}");
}
