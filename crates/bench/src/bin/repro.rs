//! Reproduction harness: regenerates every table (I–XI) and figure (1–8)
//! of the paper.
//!
//! ```text
//! cargo run --release -p bench --bin repro -- all
//! cargo run --release -p bench --bin repro -- table1 table3 fig7
//! VANI_SCALE=0.1 cargo run --release -p bench --bin repro -- fig8
//! cargo run --release -p bench --bin repro -- fault-sweep
//! cargo run --release -p bench --bin repro -- crash-sweep
//! cargo run --release -p bench --bin repro -- fleet-sweep [--short] [--jobs N] [--node-faults] [--spill DIR]
//! cargo run --release -p bench --bin repro -- trace-fsck PATH
//! cargo run --release -p bench --bin repro -- bench-pipeline [--short]
//! ```
//!
//! `VANI_SCALE` (default 0.05) sets the workload scale: 1.0 is the paper's
//! full configuration (1.5 TiB CosmoFlow corpus, 1280 ranks), which takes
//! considerably longer. Shapes are scale-stable by construction.

use bench::{ior_peak, run_all_six, scale_from_env};
use vani_core::analyzer::Analysis;
use vani_core::{crashsweep, figures, reconfig, sweep, tables, yaml};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let short = args.iter().any(|a| a == "--short");
    let node_faults = args.iter().any(|a| a == "--node-faults");
    let args: Vec<String> = args
        .into_iter()
        .filter(|a| a != "--short" && a != "--node-faults")
        .collect();
    // `--jobs N` overrides the fleet size (fleet-sweep only); consume the
    // flag and its value so neither is mistaken for an artifact name.
    // Validation goes through the typed `FleetError::InvalidJobs` — `0` or
    // a non-numeric value exits 2 with a usage message, never a panic.
    // `--spill DIR` is validated the same way (typed
    // `FleetError::InvalidSpillDir`, exit 2) before any simulation starts.
    let mut jobs: Option<usize> = None;
    let mut spill: Option<String> = None;
    let mut args_out: Vec<String> = Vec::with_capacity(args.len());
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        let jobs_value = if a == "--jobs" {
            Some(it.next().unwrap_or_default())
        } else {
            a.strip_prefix("--jobs=").map(str::to_string)
        };
        if let Some(v) = jobs_value {
            match bench::fleet::parse_jobs(&v) {
                Ok(n) => jobs = Some(n),
                Err(e) => {
                    eprintln!("{e}");
                    eprintln!(
                        "usage: repro -- fleet-sweep [--short] [--jobs N] [--node-faults] [--spill DIR]"
                    );
                    std::process::exit(2);
                }
            }
            continue;
        }
        let spill_value = if a == "--spill" {
            Some(it.next().unwrap_or_default())
        } else {
            a.strip_prefix("--spill=").map(str::to_string)
        };
        match spill_value {
            Some(v) => match bench::fleet::validate_spill_dir(&v) {
                Ok(_) => spill = Some(v),
                Err(e) => {
                    eprintln!("{e}");
                    eprintln!(
                        "usage: repro -- fleet-sweep [--short] [--jobs N] [--node-faults] [--spill DIR]"
                    );
                    std::process::exit(2);
                }
            },
            None => args_out.push(a),
        }
    }
    let args = args_out;

    // `trace-fsck PATH` is a standalone subcommand: walk the spill log,
    // print the recovery report, and exit — a missing or unreadable path
    // is a typed error and exit 2, never a panic.
    if args.first().map(String::as_str) == Some("trace-fsck") {
        let Some(path) = args.get(1) else {
            eprintln!("trace-fsck: missing PATH argument");
            eprintln!("usage: repro -- trace-fsck PATH");
            std::process::exit(2);
        };
        match bench::fsck::run_fsck(path) {
            Ok(text) => {
                print!("{text}");
                return;
            }
            Err(e) => {
                eprintln!("trace-fsck failed: {e}");
                std::process::exit(2);
            }
        }
    }
    let wanted: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        vec![
            "table1",
            "table2",
            "table3",
            "table4",
            "table5",
            "table6",
            "table7",
            "table8",
            "table9",
            "table10",
            "table11",
            "fig1",
            "fig2",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fault-sweep",
            "crash-sweep",
            "yaml",
        ]
    } else {
        args.iter().map(String::as_str).collect()
    };
    let scale = scale_from_env();
    let needs_six = wanted.iter().any(|w| {
        w.starts_with("table")
            || matches!(
                *w,
                "fig1" | "fig2" | "fig3" | "fig4" | "fig5" | "fig6" | "yaml"
            )
    });
    let analyses: Vec<Analysis> = if needs_six {
        eprintln!("running the six exemplar workloads at scale {scale} ...");
        run_all_six(scale, 7)
    } else {
        Vec::new()
    };
    let cols: Vec<&Analysis> = analyses.iter().collect();

    for w in wanted {
        match w {
            "table1" => print!("{}", tables::table1(&cols).render()),
            "table2" => print!("{}", tables::table2(&cols).render()),
            "table3" => print!("{}", tables::table3(&cols).render()),
            "table4" => print!("{}", tables::table4(&cols).render()),
            "table5" => print!("{}", tables::table5(&cols).render()),
            "table6" => print!("{}", tables::table6(&cols).render()),
            "table7" => print!("{}", tables::table7(&cols).render()),
            "table8" => print!("{}", tables::table8(&cols).render()),
            "table9" => {
                eprintln!("measuring IOR peak bandwidth ...");
                print!("{}", tables::table9(&cols, ior_peak()).render());
            }
            "table10" => print!("{}", tables::table10(&cols).render()),
            "table11" => print!("{}", tables::table11(&cols).render()),
            f @ ("fig1" | "fig2" | "fig3" | "fig4" | "fig5" | "fig6") => {
                let idx = f[3..].parse::<usize>().expect("figure index") - 1;
                println!(
                    "== Figure {}: I/O behavior of {}",
                    idx + 1,
                    cols[idx].kind.name()
                );
                print!("{}", figures::figure(cols[idx]));
            }
            "fig7" => {
                eprintln!("running Figure 7 sweep (CosmoFlow preload-to-shm) ...");
                let pts = reconfig::figure7((scale * 2.0).clamp(0.05, 1.0), &[32, 64, 128, 256], 7);
                print!(
                    "{}",
                    reconfig::render_sweep(
                        "Figure 7: CosmoFlow baseline (GPFS) vs optimized (preload to shm)",
                        &pts
                    )
                );
            }
            "fig8" => {
                eprintln!("running Figure 8 sweep (Montage intermediates-to-shm) ...");
                let pts = reconfig::figure8(scale.max(0.02) * 4.0, &[32, 64, 128, 256], 7);
                print!(
                    "{}",
                    reconfig::render_sweep(
                        "Figure 8: Montage-MPI baseline (GPFS) vs optimized (/dev/shm intermediates)",
                        &pts
                    )
                );
            }
            "fault-sweep" => {
                eprintln!(
                    "running fault-injection sweep (MDS brownout, NSD outage, shm shielding) ..."
                );
                let s = scale.clamp(0.02, 1.0);
                let report = sweep::fault_sweep(s, 7, 20.0, sweep::Driver::Parallel);
                print!("{}", report.render());
            }
            "crash-sweep" => {
                eprintln!(
                    "running crash-recovery sweep (checkpoint interval vs time-to-solution) ..."
                );
                let s = scale.clamp(0.02, 1.0);
                let report = crashsweep::crash_sweep(s, 7, sweep::Driver::Parallel);
                print!("{}", report.render());
            }
            "fleet-sweep" => {
                eprintln!("running fleet sweep (multi-tenant shared-PFS characterization) ...");
                match bench::fleet::run_fleet(short, scale, jobs, node_faults, spill.as_deref()) {
                    Ok(render) => print!("{render}"),
                    Err(e) => {
                        eprintln!("fleet-sweep failed: {e}");
                        std::process::exit(2);
                    }
                }
            }
            "bench-pipeline" => {
                bench::pipeline::run_bench(short);
            }
            "yaml" => {
                for a in &cols {
                    println!("# --- {}", a.kind.name());
                    print!("{}", yaml::emit(&tables::entities_for(a)));
                }
            }
            other => eprintln!("unknown artifact: {other}"),
        }
        println!();
    }
}
