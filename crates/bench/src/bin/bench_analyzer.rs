//! Analyzer throughput, three generations: the legacy one-scan-per-statistic
//! pipeline ([`TraceProfile::multipass`]), the fused single-pass scan
//! ([`TraceProfile::fused`]), and the streaming bounded-memory path
//! ([`TraceProfile::streaming`] over compressed chunks), on synthetic traces
//! from 10^4 to 10^7 records and on all six exemplar workloads of the paper.
//! Streaming rows also report compressed bytes per record and the peak
//! resident decoded-trace bytes (which must stay flat across trace sizes and
//! under the chunk-ring bound — asserted here, so the CI smoke run fails if
//! the streaming path ever holds more than its ring).
//!
//! Writes `BENCH_analyzer.json` at the repository root and prints a summary
//! table. Run with:
//!
//! ```text
//! cargo run --release -p bench --bin bench_analyzer            # full sweep
//! cargo run --release -p bench --bin bench_analyzer -- --short # CI smoke
//! ```
//!
//! `--short` trims the synthetic sweep to 10^6 records and cuts the sample
//! count; both modes measure the same code paths. The 8-worker setting is
//! the headline configuration; results are bit-identical at any worker
//! count (asserted here on every measured trace, and exhaustively in the
//! `analyzer_fused_vs_multipass` integration suite).

use std::time::Instant;

use exemplar_workloads::{cm1, cosmoflow, hacc, jag, montage, montage_pegasus};
use recorder_sim::chunk::{
    resident_bound, trace_gauge, ChunkedTrace, DEFAULT_CHUNK_ROWS, RING_SLOTS,
};
use recorder_sim::record::{Layer, OpKind};
use recorder_sim::ColumnarTrace;
use sim_core::Dur;
use vani_core::analyzer::TraceProfile;
use vani_rt::json::Json;
use vani_rt::{par, Rng};

/// Headline worker count for the parallel kernels.
const WORKERS: usize = 8;

/// One size point of the synthetic sweep.
struct SizeResult {
    records: usize,
    multipass_ns: u64,
    fused_ns: u64,
    streaming_ns: u64,
    compressed_bytes: usize,
    peak_resident_bytes: u64,
}

/// One exemplar workload measurement.
struct WorkloadResult {
    name: &'static str,
    records: usize,
    multipass_ns: u64,
    fused_ns: u64,
    streaming_ns: u64,
}

fn speedup(multipass_ns: u64, fused_ns: u64) -> f64 {
    multipass_ns as f64 / fused_ns.max(1) as f64
}

fn records_per_sec(records: usize, ns: u64) -> f64 {
    records as f64 / (ns.max(1) as f64 / 1e9)
}

/// Build a synthetic trace that exercises every analyzer code path: POSIX
/// reads/writes with mostly-sequential per-(rank, file) offset chains, a
/// metadata tail per file, a handful of shared files next to
/// file-per-process ones, several apps, and a few quiet gaps so phase
/// detection has real work. Fully deterministic from the seed.
fn synthetic_trace(n: usize, seed: u64) -> (ColumnarTrace, Dur) {
    let ranks = 64u32;
    let shared_files = 8u32;
    let apps = 4u16;
    let mut rng = Rng::new(seed);

    let file_paths: Vec<String> = (0..ranks)
        .map(|r| format!("/scratch/fpp/part.{r:04}"))
        .chain((0..shared_files).map(|f| format!("/scratch/shared/step{f:02}.dat")))
        .collect();
    let app_names: Vec<String> = (0..apps).map(|a| format!("kernel{a}")).collect();

    let mut c = ColumnarTrace {
        file_paths,
        app_names,
        ..Default::default()
    };
    // Per-file write frontier keeps most chains sequential.
    let mut frontier = vec![0u64; (ranks + shared_files) as usize];
    let mut clock = 1_000u64;
    for i in 0..n {
        let rank = rng.uniform_u64(0, ranks as u64) as u32;
        let app = (rank % apps as u32) as u16;
        // Quiet gap roughly every n/6 records => ~6 I/O phases.
        if i > 0 && i % (n / 6).max(1) == 0 {
            clock += 400_000_000; // 0.4 s of silence
        }
        let roll = rng.uniform_u64(0, 100);
        let file = if roll < 70 {
            rank // FPP file
        } else {
            ranks + rng.uniform_u64(0, shared_files as u64) as u32
        };
        let (op, bytes) = if roll < 80 {
            let sz = 1u64 << rng.uniform_u64(12, 21); // 4 KiB .. 1 MiB
            (
                if roll < 40 {
                    OpKind::Write
                } else {
                    OpKind::Read
                },
                sz,
            )
        } else if roll < 90 {
            (OpKind::Open, 0)
        } else {
            (OpKind::Close, 0)
        };
        let offset = if op.is_data() {
            let f = &mut frontier[file as usize];
            let at = if rng.uniform_u64(0, 100) < 95 {
                *f // sequential continuation
            } else {
                rng.uniform_u64(0, (*f).max(1)) // occasional backward jump
            };
            *f = (*f).max(at + bytes);
            at
        } else {
            0
        };
        let dur = 2_000 + bytes / 4; // ~4 GB/s plus fixed latency, in ns
        clock += rng.uniform_u64(100, 2_000);
        c.rank.push(rank);
        c.node.push(rank / 8);
        c.app.push(app);
        c.layer.push(Layer::Posix);
        c.op.push(op);
        c.start.push(clock);
        c.end.push(clock + dur);
        c.file.push(file);
        c.offset.push(offset);
        c.bytes.push(bytes);
    }
    let job_time = Dur(c.end.last().copied().unwrap_or(1) + 1_000_000);
    (c, job_time)
}

/// Best-of-`samples` wall time for one profiling path, with one warm-up.
fn time_path<F: Fn() -> TraceProfile>(samples: usize, f: F) -> (TraceProfile, u64) {
    let reference = f();
    let mut best = u64::MAX;
    for _ in 0..samples {
        let t0 = Instant::now();
        let p = std::hint::black_box(f());
        best = best.min(t0.elapsed().as_nanos() as u64);
        assert_eq!(p, reference, "profile changed between samples");
    }
    (reference, best)
}

/// Measure all three paths on one trace and cross-check them for equality.
/// Streaming is timed on a pre-sealed [`ChunkedTrace`] (seal cost belongs to
/// capture, not analysis) and its gauge peak is asserted under the ring
/// bound. Returns `(multipass_ns, fused_ns, streaming_ns, compressed_bytes,
/// peak_resident_bytes)`.
fn measure(c: &ColumnarTrace, job_time: Dur, samples: usize) -> (u64, u64, u64, usize, u64) {
    let (multi, multipass_ns) = time_path(samples, || TraceProfile::multipass(c, job_time));
    let (fused, fused_ns) = time_path(samples, || TraceProfile::fused(c, job_time));
    assert_eq!(fused, multi, "fused profile diverged from multipass");

    let t = ChunkedTrace::from_columnar(c, DEFAULT_CHUNK_ROWS);
    trace_gauge().reset();
    let (streamed, streaming_ns) = time_path(samples, || TraceProfile::streaming(&t, job_time));
    let peak = trace_gauge().peak();
    assert_eq!(streamed, fused, "streaming profile diverged from fused");
    assert!(
        peak <= resident_bound(DEFAULT_CHUNK_ROWS, RING_SLOTS),
        "streaming peak {peak} B exceeds resident_bound({DEFAULT_CHUNK_ROWS}, {RING_SLOTS}) = {} B",
        resident_bound(DEFAULT_CHUNK_ROWS, RING_SLOTS)
    );
    (
        multipass_ns,
        fused_ns,
        streaming_ns,
        t.compressed_bytes(),
        peak,
    )
}

fn main() {
    let short = std::env::args().any(|a| a == "--short");
    let samples = if short { 3 } else { 5 };
    par::set_threads(WORKERS);

    let sizes: &[usize] = if short {
        &[10_000, 100_000, 1_000_000]
    } else {
        &[10_000, 100_000, 1_000_000, 10_000_000]
    };

    eprintln!(
        "analyzer bench: fused vs multipass ({} workers, {} samples, best-of)",
        WORKERS, samples
    );
    let mut synthetic = Vec::new();
    for &n in sizes {
        let (c, job_time) = synthetic_trace(n, 0x5eed_0001 + n as u64);
        let (multipass_ns, fused_ns, streaming_ns, compressed_bytes, peak_resident_bytes) =
            measure(&c, job_time, samples);
        eprintln!(
            "  synthetic {:>9} records: multipass {:>9.3} ms, fused {:>9.3} ms ({:>6.1} Mrec/s), streaming {:>9.3} ms ({:>6.1} Mrec/s), {:>5.2} B/rec, peak {:>9} B",
            n,
            multipass_ns as f64 / 1e6,
            fused_ns as f64 / 1e6,
            records_per_sec(n, fused_ns) / 1e6,
            streaming_ns as f64 / 1e6,
            records_per_sec(n, streaming_ns) / 1e6,
            compressed_bytes as f64 / n.max(1) as f64,
            peak_resident_bytes,
        );
        synthetic.push(SizeResult {
            records: n,
            multipass_ns,
            fused_ns,
            streaming_ns,
            compressed_bytes,
            peak_resident_bytes,
        });
    }

    let scale = if short { 0.01 } else { 0.05 };
    let runs: Vec<(&'static str, exemplar_workloads::WorkloadRun)> = vec![
        ("cm1", cm1::run(scale, 7)),
        ("hacc", hacc::run(scale, 7)),
        ("cosmoflow", cosmoflow::run(scale / 10.0, 7)),
        ("jag", jag::run(scale, 7)),
        ("montage", montage::run(scale, 7)),
        ("montage_pegasus", montage_pegasus::run(scale, 7)),
    ];
    let mut workloads = Vec::new();
    for (name, run) in &runs {
        let c = run.columnar();
        let (multipass_ns, fused_ns, streaming_ns, _, _) = measure(&c, run.runtime(), samples);
        eprintln!(
            "  workload {name:>16} ({:>7} records): multipass {:>8.3} ms, fused {:>8.3} ms, streaming {:>8.3} ms, speedup {:>5.2}x",
            c.len(),
            multipass_ns as f64 / 1e6,
            fused_ns as f64 / 1e6,
            streaming_ns as f64 / 1e6,
            speedup(multipass_ns, fused_ns),
        );
        workloads.push(WorkloadResult {
            name,
            records: c.len(),
            multipass_ns,
            fused_ns,
            streaming_ns,
        });
    }
    par::set_threads(0);

    let json = Json::obj([
        (
            "config",
            Json::obj([
                (
                    "mode",
                    Json::Str(if short { "short" } else { "full" }.into()),
                ),
                ("workers", Json::Int(WORKERS as i128)),
                ("samples", Json::Int(samples as i128)),
                ("timing", Json::Str("best-of wall clock, 1 warm-up".into())),
            ]),
        ),
        (
            "synthetic",
            Json::Arr(
                synthetic
                    .iter()
                    .map(|r| {
                        Json::obj([
                            ("records", Json::Int(r.records as i128)),
                            ("multipass_ns", Json::Int(r.multipass_ns as i128)),
                            ("fused_ns", Json::Int(r.fused_ns as i128)),
                            ("streaming_ns", Json::Int(r.streaming_ns as i128)),
                            ("speedup", Json::Float(speedup(r.multipass_ns, r.fused_ns))),
                            (
                                "fused_records_per_sec",
                                Json::Float(records_per_sec(r.records, r.fused_ns)),
                            ),
                            (
                                "streaming_records_per_sec",
                                Json::Float(records_per_sec(r.records, r.streaming_ns)),
                            ),
                            (
                                "compressed_bytes_per_record",
                                Json::Float(r.compressed_bytes as f64 / r.records.max(1) as f64),
                            ),
                            (
                                "peak_resident_bytes",
                                Json::Int(r.peak_resident_bytes as i128),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "workloads",
            Json::Arr(
                workloads
                    .iter()
                    .map(|r| {
                        Json::obj([
                            ("name", Json::Str(r.name.into())),
                            ("records", Json::Int(r.records as i128)),
                            ("multipass_ns", Json::Int(r.multipass_ns as i128)),
                            ("fused_ns", Json::Int(r.fused_ns as i128)),
                            ("streaming_ns", Json::Int(r.streaming_ns as i128)),
                            ("speedup", Json::Float(speedup(r.multipass_ns, r.fused_ns))),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);

    let out = format!("{}\n", json.render());
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_analyzer.json");
    std::fs::write(path, out).expect("write BENCH_analyzer.json");
    eprintln!("wrote {path}");
}
