//! Analyzer throughput, four generations: the legacy one-scan-per-statistic
//! pipeline ([`TraceProfile::multipass`]), the fused single-pass scan
//! ([`TraceProfile::fused`]), the streaming bounded-memory path
//! ([`TraceProfile::streaming`] over compressed chunks), and the spill path
//! ([`TraceProfile::streaming_source`] over an on-disk segment log), on
//! synthetic traces from 10^4 to 10^7 records and on all six exemplar
//! workloads of the paper. Streaming and spill rows also report bytes per
//! record and the peak resident decoded-trace bytes (which must stay flat
//! across trace sizes and under the chunk-ring bound — asserted here for
//! both paths, so the CI smoke run fails if either ever holds more than
//! its ring; the full sweep proves the 10⁷-record larger-than-RAM claim).
//!
//! Writes `BENCH_analyzer.json` at the repository root and prints a summary
//! table. Run with:
//!
//! ```text
//! cargo run --release -p bench --bin bench_analyzer            # full sweep
//! cargo run --release -p bench --bin bench_analyzer -- --short # CI smoke
//! ```
//!
//! `--short` trims the synthetic sweep to 10^6 records and cuts the sample
//! count; both modes measure the same code paths. The 8-worker setting is
//! the headline configuration; results are bit-identical at any worker
//! count (asserted here on every measured trace, and exhaustively in the
//! `analyzer_fused_vs_multipass` integration suite).

use std::time::Instant;

use exemplar_workloads::{cm1, cosmoflow, hacc, jag, montage, montage_pegasus};
use recorder_sim::chunk::{
    resident_bound, trace_gauge, ChunkedTrace, DEFAULT_CHUNK_ROWS, RING_SLOTS,
};
use recorder_sim::record::{Layer, OpKind};
use recorder_sim::spill::{spill_columnar, SpillSource};
use recorder_sim::{ColumnarTrace, SpillFaultPlan};
use sim_core::Dur;
use vani_core::analyzer::TraceProfile;
use vani_rt::json::Json;
use vani_rt::{par, Rng};

/// Headline worker count for the parallel kernels.
const WORKERS: usize = 8;

/// One size point of the synthetic sweep.
struct SizeResult {
    records: usize,
    multipass_ns: u64,
    fused_ns: u64,
    streaming_ns: u64,
    spill_ns: u64,
    compressed_bytes: usize,
    spill_log_bytes: u64,
    peak_resident_bytes: u64,
    spill_peak_resident_bytes: u64,
}

/// One exemplar workload measurement.
struct WorkloadResult {
    name: &'static str,
    records: usize,
    multipass_ns: u64,
    fused_ns: u64,
    streaming_ns: u64,
}

fn speedup(multipass_ns: u64, fused_ns: u64) -> f64 {
    multipass_ns as f64 / fused_ns.max(1) as f64
}

fn records_per_sec(records: usize, ns: u64) -> f64 {
    records as f64 / (ns.max(1) as f64 / 1e9)
}

/// Build a synthetic trace that exercises every analyzer code path: POSIX
/// reads/writes with mostly-sequential per-(rank, file) offset chains, a
/// metadata tail per file, a handful of shared files next to
/// file-per-process ones, several apps, and a few quiet gaps so phase
/// detection has real work. Fully deterministic from the seed.
fn synthetic_trace(n: usize, seed: u64) -> (ColumnarTrace, Dur) {
    let ranks = 64u32;
    let shared_files = 8u32;
    let apps = 4u16;
    let mut rng = Rng::new(seed);

    let file_paths: Vec<String> = (0..ranks)
        .map(|r| format!("/scratch/fpp/part.{r:04}"))
        .chain((0..shared_files).map(|f| format!("/scratch/shared/step{f:02}.dat")))
        .collect();
    let app_names: Vec<String> = (0..apps).map(|a| format!("kernel{a}")).collect();

    let mut c = ColumnarTrace {
        file_paths,
        app_names,
        ..Default::default()
    };
    // Per-file write frontier keeps most chains sequential.
    let mut frontier = vec![0u64; (ranks + shared_files) as usize];
    let mut clock = 1_000u64;
    for i in 0..n {
        let rank = rng.uniform_u64(0, ranks as u64) as u32;
        let app = (rank % apps as u32) as u16;
        // Quiet gap roughly every n/6 records => ~6 I/O phases.
        if i > 0 && i % (n / 6).max(1) == 0 {
            clock += 400_000_000; // 0.4 s of silence
        }
        let roll = rng.uniform_u64(0, 100);
        let file = if roll < 70 {
            rank // FPP file
        } else {
            ranks + rng.uniform_u64(0, shared_files as u64) as u32
        };
        let (op, bytes) = if roll < 80 {
            let sz = 1u64 << rng.uniform_u64(12, 21); // 4 KiB .. 1 MiB
            (
                if roll < 40 {
                    OpKind::Write
                } else {
                    OpKind::Read
                },
                sz,
            )
        } else if roll < 90 {
            (OpKind::Open, 0)
        } else {
            (OpKind::Close, 0)
        };
        let offset = if op.is_data() {
            let f = &mut frontier[file as usize];
            let at = if rng.uniform_u64(0, 100) < 95 {
                *f // sequential continuation
            } else {
                rng.uniform_u64(0, (*f).max(1)) // occasional backward jump
            };
            *f = (*f).max(at + bytes);
            at
        } else {
            0
        };
        let dur = 2_000 + bytes / 4; // ~4 GB/s plus fixed latency, in ns
        clock += rng.uniform_u64(100, 2_000);
        c.rank.push(rank);
        c.node.push(rank / 8);
        c.app.push(app);
        c.layer.push(Layer::Posix);
        c.op.push(op);
        c.start.push(clock);
        c.end.push(clock + dur);
        c.file.push(file);
        c.offset.push(offset);
        c.bytes.push(bytes);
    }
    let job_time = Dur(c.end.last().copied().unwrap_or(1) + 1_000_000);
    (c, job_time)
}

/// Best-of-`samples` wall time for one profiling path, with one warm-up.
fn time_path<F: Fn() -> TraceProfile>(samples: usize, f: F) -> (TraceProfile, u64) {
    let reference = f();
    let mut best = u64::MAX;
    for _ in 0..samples {
        let t0 = Instant::now();
        let p = std::hint::black_box(f());
        best = best.min(t0.elapsed().as_nanos() as u64);
        assert_eq!(p, reference, "profile changed between samples");
    }
    (reference, best)
}

/// What [`measure`] produced for one trace.
struct Measured {
    multipass_ns: u64,
    fused_ns: u64,
    streaming_ns: u64,
    spill_ns: u64,
    compressed_bytes: usize,
    spill_log_bytes: u64,
    peak_resident_bytes: u64,
    spill_peak_resident_bytes: u64,
}

/// Measure all four paths on one trace and cross-check them for equality.
/// Streaming is timed on a pre-sealed [`ChunkedTrace`] (seal cost belongs to
/// capture, not analysis) and its gauge peak is asserted under the ring
/// bound. The spill path writes the same chunks into an on-disk segment
/// log (once — the write is capture cost), then profiles straight off
/// disk; its gauge peak covers the writer's staging buffers *and* the
/// off-disk scan, and must also stay at the ring bound — the
/// larger-than-RAM claim, asserted on every run including the 10⁷-record
/// full sweep.
fn measure(c: &ColumnarTrace, job_time: Dur, samples: usize) -> Measured {
    let (multi, multipass_ns) = time_path(samples, || TraceProfile::multipass(c, job_time));
    let (fused, fused_ns) = time_path(samples, || TraceProfile::fused(c, job_time));
    assert_eq!(fused, multi, "fused profile diverged from multipass");

    let t = ChunkedTrace::from_columnar(c, DEFAULT_CHUNK_ROWS);
    trace_gauge().reset();
    let (streamed, streaming_ns) = time_path(samples, || TraceProfile::streaming(&t, job_time));
    let peak = trace_gauge().peak();
    assert_eq!(streamed, fused, "streaming profile diverged from fused");
    let bound = resident_bound(DEFAULT_CHUNK_ROWS, RING_SLOTS);
    assert!(
        peak <= bound,
        "streaming peak {peak} B exceeds resident_bound({DEFAULT_CHUNK_ROWS}, {RING_SLOTS}) = {bound} B"
    );

    let spill_path = std::env::temp_dir().join(format!("vani-bench-spill-{}.vsp3", c.len()));
    trace_gauge().reset();
    let summary = spill_columnar(c, DEFAULT_CHUNK_ROWS, &spill_path, SpillFaultPlan::none())
        .expect("clean spill capture");
    let src = SpillSource::open_strict(&spill_path).expect("clean log opens strict");
    let (spilled, spill_ns) = time_path(samples, || {
        TraceProfile::streaming_source(&src, job_time).expect("off-disk streaming")
    });
    let spill_peak = trace_gauge().peak();
    assert_eq!(spilled, fused, "off-disk spill profile diverged from fused");
    assert!(
        spill_peak <= bound,
        "spill peak {spill_peak} B exceeds resident_bound({DEFAULT_CHUNK_ROWS}, {RING_SLOTS}) = {bound} B"
    );
    std::fs::remove_file(&spill_path).expect("remove bench spill log");

    Measured {
        multipass_ns,
        fused_ns,
        streaming_ns,
        spill_ns,
        compressed_bytes: t.compressed_bytes(),
        spill_log_bytes: summary.bytes,
        peak_resident_bytes: peak,
        spill_peak_resident_bytes: spill_peak,
    }
}

fn main() {
    let short = std::env::args().any(|a| a == "--short");
    let samples = if short { 3 } else { 5 };
    par::set_threads(WORKERS);

    let sizes: &[usize] = if short {
        &[10_000, 100_000, 1_000_000]
    } else {
        &[10_000, 100_000, 1_000_000, 10_000_000]
    };

    eprintln!(
        "analyzer bench: fused vs multipass ({} workers, {} samples, best-of)",
        WORKERS, samples
    );
    let mut synthetic = Vec::new();
    for &n in sizes {
        let (c, job_time) = synthetic_trace(n, 0x5eed_0001 + n as u64);
        let m = measure(&c, job_time, samples);
        eprintln!(
            "  synthetic {:>9} records: multipass {:>9.3} ms, fused {:>9.3} ms ({:>6.1} Mrec/s), streaming {:>9.3} ms ({:>6.1} Mrec/s), spill {:>9.3} ms, {:>5.2} B/rec, peak {:>9} B (spill peak {:>9} B)",
            n,
            m.multipass_ns as f64 / 1e6,
            m.fused_ns as f64 / 1e6,
            records_per_sec(n, m.fused_ns) / 1e6,
            m.streaming_ns as f64 / 1e6,
            records_per_sec(n, m.streaming_ns) / 1e6,
            m.spill_ns as f64 / 1e6,
            m.compressed_bytes as f64 / n.max(1) as f64,
            m.peak_resident_bytes,
            m.spill_peak_resident_bytes,
        );
        synthetic.push(SizeResult {
            records: n,
            multipass_ns: m.multipass_ns,
            fused_ns: m.fused_ns,
            streaming_ns: m.streaming_ns,
            spill_ns: m.spill_ns,
            compressed_bytes: m.compressed_bytes,
            spill_log_bytes: m.spill_log_bytes,
            peak_resident_bytes: m.peak_resident_bytes,
            spill_peak_resident_bytes: m.spill_peak_resident_bytes,
        });
    }

    let scale = if short { 0.01 } else { 0.05 };
    let runs: Vec<(&'static str, exemplar_workloads::WorkloadRun)> = vec![
        ("cm1", cm1::run(scale, 7)),
        ("hacc", hacc::run(scale, 7)),
        ("cosmoflow", cosmoflow::run(scale / 10.0, 7)),
        ("jag", jag::run(scale, 7)),
        ("montage", montage::run(scale, 7)),
        ("montage_pegasus", montage_pegasus::run(scale, 7)),
    ];
    let mut workloads = Vec::new();
    for (name, run) in &runs {
        let c = run.columnar();
        let m = measure(&c, run.runtime(), samples);
        eprintln!(
            "  workload {name:>16} ({:>7} records): multipass {:>8.3} ms, fused {:>8.3} ms, streaming {:>8.3} ms, speedup {:>5.2}x",
            c.len(),
            m.multipass_ns as f64 / 1e6,
            m.fused_ns as f64 / 1e6,
            m.streaming_ns as f64 / 1e6,
            speedup(m.multipass_ns, m.fused_ns),
        );
        workloads.push(WorkloadResult {
            name,
            records: c.len(),
            multipass_ns: m.multipass_ns,
            fused_ns: m.fused_ns,
            streaming_ns: m.streaming_ns,
        });
    }
    par::set_threads(0);

    let json = Json::obj([
        (
            "config",
            Json::obj([
                (
                    "mode",
                    Json::Str(if short { "short" } else { "full" }.into()),
                ),
                ("workers", Json::Int(WORKERS as i128)),
                ("samples", Json::Int(samples as i128)),
                ("timing", Json::Str("best-of wall clock, 1 warm-up".into())),
            ]),
        ),
        (
            "synthetic",
            Json::Arr(
                synthetic
                    .iter()
                    .map(|r| {
                        Json::obj([
                            ("records", Json::Int(r.records as i128)),
                            ("multipass_ns", Json::Int(r.multipass_ns as i128)),
                            ("fused_ns", Json::Int(r.fused_ns as i128)),
                            ("streaming_ns", Json::Int(r.streaming_ns as i128)),
                            ("speedup", Json::Float(speedup(r.multipass_ns, r.fused_ns))),
                            (
                                "fused_records_per_sec",
                                Json::Float(records_per_sec(r.records, r.fused_ns)),
                            ),
                            (
                                "streaming_records_per_sec",
                                Json::Float(records_per_sec(r.records, r.streaming_ns)),
                            ),
                            (
                                "compressed_bytes_per_record",
                                Json::Float(r.compressed_bytes as f64 / r.records.max(1) as f64),
                            ),
                            (
                                "peak_resident_bytes",
                                Json::Int(r.peak_resident_bytes as i128),
                            ),
                            ("spill_ns", Json::Int(r.spill_ns as i128)),
                            (
                                "spill_records_per_sec",
                                Json::Float(records_per_sec(r.records, r.spill_ns)),
                            ),
                            (
                                "spill_log_bytes_per_record",
                                Json::Float(r.spill_log_bytes as f64 / r.records.max(1) as f64),
                            ),
                            (
                                "spill_peak_resident_bytes",
                                Json::Int(r.spill_peak_resident_bytes as i128),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "workloads",
            Json::Arr(
                workloads
                    .iter()
                    .map(|r| {
                        Json::obj([
                            ("name", Json::Str(r.name.into())),
                            ("records", Json::Int(r.records as i128)),
                            ("multipass_ns", Json::Int(r.multipass_ns as i128)),
                            ("fused_ns", Json::Int(r.fused_ns as i128)),
                            ("streaming_ns", Json::Int(r.streaming_ns as i128)),
                            ("speedup", Json::Float(speedup(r.multipass_ns, r.fused_ns))),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);

    let out = format!("{}\n", json.render());
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_analyzer.json");
    std::fs::write(path, out).expect("write BENCH_analyzer.json");
    eprintln!("wrote {path}");
}
