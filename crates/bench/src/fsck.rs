//! `repro -- trace-fsck PATH`: offline recovery check for a spill log.
//!
//! Walks the crash-consistent segment log at `PATH`, recovers the longest
//! committed prefix, and renders the [`FsckReport`] as plain text — the
//! operator-facing view of what `SpillSource::open_salvaged` would load.
//! A path that does not exist, is not a spill log, or cannot be read
//! surfaces as a typed [`SpillError`] so the binary exits 2 with a
//! message, mirroring the `--jobs` / `--spill` validation contract.

use std::path::Path;

use recorder_sim::spill::{fsck, QuarantineReason};
use recorder_sim::{FsckReport, SpillError};

/// Walk the log at `path` and render its recovery report.
pub fn run_fsck(path: &str) -> Result<String, SpillError> {
    let report = fsck(Path::new(path))?;
    Ok(render_report(path, &report))
}

/// Render an [`FsckReport`] the way `repro -- trace-fsck` prints it.
pub fn render_report(path: &str, r: &FsckReport) -> String {
    let c = r.completeness;
    let verdict = if r.is_clean() {
        "clean (sealed, fully committed, no anomalies)".to_string()
    } else if c.loaded_records == 0 && c.expected_records > 0 {
        "lost (no committed prefix survived)".to_string()
    } else {
        format!(
            "salvaged (longest committed prefix: {} of {} records)",
            c.loaded_records, c.expected_records
        )
    };
    let mut out = String::from("== trace-fsck: spill log recovery\n");
    out.push_str(&format!("path    : {path}\n"));
    out.push_str(&format!("verdict : {verdict}\n"));
    out.push_str(&format!(
        "sealed  : {}\n",
        if r.sealed {
            "yes (footer found)"
        } else {
            "no (writer did not finish)"
        }
    ));
    out.push_str(&format!(
        "recovered: {} chunks, {} records ({:.4} of expected)\n",
        r.committed_chunks,
        r.committed_records,
        c.fraction()
    ));
    out.push_str(&format!("fsync points observed: {}\n", r.fsync_points));
    if r.quarantined.is_empty() {
        out.push_str("quarantined segments: none\n");
    } else {
        out.push_str(&format!("quarantined segments: {}\n", r.quarantined.len()));
        for q in &r.quarantined {
            out.push_str(&format!(
                "  frame {:>4} @ byte {:>10}: {}\n",
                q.frame, q.offset, q.reason
            ));
        }
    }
    out
}

/// Whether any quarantined segment is actual damage (anything other than
/// an uncommitted-but-readable tail).
pub fn has_damage(r: &FsckReport) -> bool {
    r.quarantined
        .iter()
        .any(|q| q.reason != QuarantineReason::Uncommitted)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fsck_on_a_missing_path_is_a_typed_error() {
        match run_fsck("/nonexistent/vani/trace.vsp3") {
            Err(SpillError::Io { .. }) => {}
            other => panic!("missing path must be a typed Io error, got {other:?}"),
        }
    }

    #[test]
    fn fsck_on_a_non_spill_file_is_a_typed_error() {
        let path = std::env::temp_dir().join("vani-fsck-not-a-log.json");
        std::fs::write(&path, b"{\"not\": \"a spill log\"}").expect("write probe");
        match run_fsck(path.to_str().expect("utf8 temp path")) {
            Err(SpillError::NotSpill { .. }) => {}
            other => panic!("non-spill file must be NotSpill, got {other:?}"),
        }
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn clean_log_renders_a_clean_verdict() {
        use recorder_sim::{ColumnarTrace, Layer, OpKind, SpillFaultPlan, Tracer};
        use sim_core::SimTime;

        let mut t = Tracer::new();
        let f = t.file_id("/p/gpfs1/x");
        let a = t.app_id("app");
        for i in 0..300u64 {
            t.record(
                (i % 4) as u32,
                (i % 2) as u32,
                a,
                Layer::Posix,
                OpKind::Write,
                SimTime(i),
                SimTime(i + 9),
                Some(f),
                4,
                64 + i,
            );
        }
        let c = ColumnarTrace::from_tracer(&t);
        let path = std::env::temp_dir().join("vani-fsck-clean.vsp3");
        recorder_sim::spill::spill_columnar(&c, 64, &path, SpillFaultPlan::none())
            .expect("clean spill");
        let text = run_fsck(path.to_str().expect("utf8 temp path")).expect("fsck clean log");
        assert!(text.contains("verdict : clean"), "render: {text}");
        assert!(
            text.contains("quarantined segments: none"),
            "render: {text}"
        );
        let loaded = recorder_sim::spill::load_spill(&path).expect("load clean log");
        assert_eq!(loaded.len(), 300);
        std::fs::remove_file(&path).expect("cleanup");
    }
}
