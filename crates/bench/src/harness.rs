//! Built-in wall-clock benchmark harness.
//!
//! A minimal, dependency-free stand-in for the subset of the criterion API
//! the bench targets use (`Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId::from_parameter`, `criterion_group!`,
//! `criterion_main!`). Timing is plain `std::time::Instant` sampling —
//! no outlier rejection or regression analysis — which is enough to spot
//! order-of-magnitude changes and keeps `cargo bench` building offline.
//!
//! Enable the `external-bench` feature (after vendoring the `criterion`
//! crate) to switch the bench targets back to the real thing.

use std::time::{Duration, Instant};

// The bench targets import the macros from this module; `#[macro_export]`
// puts them at the crate root, so re-export them here.
pub use crate::{criterion_group, criterion_main};

/// Samples per benchmark unless overridden with
/// [`BenchmarkGroup::sample_size`].
const DEFAULT_SAMPLES: usize = 10;

/// Top-level handle, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        eprintln!("\n== {name} ==");
        BenchmarkGroup {
            name,
            samples: DEFAULT_SAMPLES,
        }
    }
}

/// A named benchmark id, mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Identify a benchmark within a group by its parameter value.
    pub fn from_parameter(p: impl std::fmt::Display) -> Self {
        BenchmarkId(p.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

/// A group of benchmarks sharing a sample count.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    samples: usize,
}

impl BenchmarkGroup {
    /// Set the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Time a closure-driven benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.samples,
            times: Vec::new(),
        };
        f(&mut b);
        b.report(&self.name, &id.0);
        self
    }

    /// Time a benchmark parameterized by an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.samples,
            times: Vec::new(),
        };
        f(&mut b, input);
        b.report(&self.name, &id.0);
        self
    }

    /// End the group (criterion parity; nothing to flush here).
    pub fn finish(self) {}
}

/// Runs and times the measured routine.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    times: Vec<Duration>,
}

impl Bencher {
    /// Run `f` once as warm-up, then `samples` timed iterations.
    pub fn iter<R, F>(&mut self, mut f: F)
    where
        F: FnMut() -> R,
    {
        std::hint::black_box(f());
        self.times = (0..self.samples)
            .map(|_| {
                let t0 = Instant::now();
                std::hint::black_box(f());
                t0.elapsed()
            })
            .collect();
    }

    fn report(&self, group: &str, id: &str) {
        if self.times.is_empty() {
            eprintln!("{group}/{id}: no samples recorded");
            return;
        }
        let min = self.times.iter().min().unwrap();
        let max = self.times.iter().max().unwrap();
        let mean = self.times.iter().sum::<Duration>() / self.times.len() as u32;
        eprintln!(
            "{group}/{id}: mean {} (min {}, max {}, {} samples)",
            fmt_dur(mean),
            fmt_dur(*min),
            fmt_dur(*max),
            self.times.len()
        );
    }
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.3}s", ns as f64 / 1e9)
    }
}

/// Define a bench entry point running each listed function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::harness::Criterion::default();
            $($bench(&mut c);)+
        }
    };
}

/// Define `main` from one or more `criterion_group!` names, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_requested_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("harness_test");
        g.sample_size(3);
        let mut runs = 0u32;
        g.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        g.finish();
        // 1 warm-up + 3 timed samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn duration_formatting_picks_units() {
        assert_eq!(fmt_dur(Duration::from_nanos(17)), "17ns");
        assert_eq!(fmt_dur(Duration::from_micros(250)), "250.00us");
        assert_eq!(fmt_dur(Duration::from_millis(3)), "3.00ms");
        assert_eq!(fmt_dur(Duration::from_secs(2)), "2.000s");
    }
}
