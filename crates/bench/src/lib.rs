//! Shared harness code for the table/figure reproduction binary and the
//! benches: runs the six exemplar workloads once at a chosen scale and
//! hands out their analyses.

use vani_core::analyzer::Analysis;
use vani_core::sweep::{self, Driver};

pub mod fleet;
pub mod fsck;
pub mod harness;
pub mod pipeline;

/// Default scale for the reproduction harness (`VANI_SCALE` overrides).
pub const DEFAULT_SCALE: f64 = 0.05;

/// Read the scale from the environment.
pub fn scale_from_env() -> f64 {
    std::env::var("VANI_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SCALE)
}

/// Run all six exemplar workloads (in parallel) and analyze them, in the
/// paper's column order.
pub fn run_all_six(scale: f64, seed: u64) -> Vec<Analysis> {
    sweep::paper_six(scale, seed, Driver::Parallel)
}

/// Measured IOR peak bandwidth for Table IX.
pub fn ior_peak() -> f64 {
    let p = exemplar_workloads::ior::IorParams {
        nodes: 32,
        ranks_per_node: 4,
        bytes_per_rank: 64 << 20,
        xfer: 16 << 20,
        read_back: false,
        ..exemplar_workloads::ior::IorParams::paper()
    };
    let run = exemplar_workloads::ior::run(p, 1);
    exemplar_workloads::ior::aggregate_bw(&run)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_six_analyses_have_io() {
        let analyses = run_all_six(0.01, 3);
        assert_eq!(analyses.len(), 6);
        for a in &analyses {
            assert!(a.io_bytes() > 0, "{} moved no bytes", a.kind.name());
            assert!(a.n_files() > 0);
        }
    }
}
