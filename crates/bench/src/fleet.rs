//! Fleet sweep driver: the multi-tenant datacenter mode, invoked as
//! `repro -- fleet-sweep [--short] [--jobs N] [--node-faults]
//! [--spill DIR]`; writes `BENCH_fleet.json` at the repository root.
//!
//! With `--spill DIR` every job's captured trace streams into a
//! crash-consistent segment log under `DIR` (`job-NNNNN.vsp3`), is
//! recovered, and is analyzed straight off disk — the larger-than-RAM
//! fleet mode. The directory is validated up front with the typed
//! [`FleetError::InvalidSpillDir`] (exit 2), mirroring `--jobs`.
//!
//! The full run admits 1000 heterogeneous jobs (the short run 64; `--jobs`
//! overrides either, e.g. `--jobs 10000` for the bounded-memory fleet
//! demonstration) onto the shared cluster and renders the fleet's
//! statistical characterization. Per-job analysis goes through the
//! streaming profiler, so the peak resident trace footprint — reported in
//! `BENCH_fleet.json` as `peak_resident_trace_bytes` — stays bounded by
//! the chunk ring regardless of fleet size. The same fleet is executed with the sequential
//! driver and the parallel driver at 1, 2, and 8 workers; every rendered
//! report is asserted **byte-identical** to the sequential reference
//! before anything is written — ci.sh relies on this, and a divergence
//! aborts with the offending worker count.
//!
//! Invalid fleet configurations (an unknown workload id in the mix, a
//! variant a workload cannot run, a job wider than the cluster) surface
//! as a typed [`FleetError`] so the binary can fail fast with a message
//! instead of a panic.

use std::path::PathBuf;
use std::time::Instant;

use vani_core::sweep::Driver;
use vani_core::tenancy::{fleet_sweep, FleetConfig, FleetError, FleetReport, SpillSpec};
use vani_rt::json::Json;
use vani_rt::par;

/// Jobs in the full fleet (`--short` uses [`SHORT_JOBS`]).
pub const FULL_JOBS: usize = 1000;
/// Jobs in the short (CI) fleet.
pub const SHORT_JOBS: usize = 64;

/// Parse a `--jobs` argument: a positive integer, or a typed
/// [`FleetError::InvalidJobs`] — never a panic or a silent unwrap.
pub fn parse_jobs(arg: &str) -> Result<usize, FleetError> {
    match arg.parse::<usize>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err(FleetError::InvalidJobs {
            arg: arg.to_string(),
        }),
    }
}

/// Validate a `--spill` directory: it must exist, be a directory, and be
/// writable (probed by creating and removing a marker file). Failures are
/// the typed [`FleetError::InvalidSpillDir`] — the same exit-2 contract as
/// `--jobs` — never a panic or a mid-sweep I/O error.
pub fn validate_spill_dir(arg: &str) -> Result<PathBuf, FleetError> {
    let bad = |detail: &str| FleetError::InvalidSpillDir {
        dir: arg.to_string(),
        detail: detail.to_string(),
    };
    let dir = PathBuf::from(arg);
    let meta = std::fs::metadata(&dir).map_err(|e| bad(&format!("cannot stat ({e})")))?;
    if !meta.is_dir() {
        return Err(bad("not a directory"));
    }
    let probe = dir.join(".vani-spill-probe");
    std::fs::write(&probe, b"probe").map_err(|e| bad(&format!("not writable ({e})")))?;
    let _ = std::fs::remove_file(&probe);
    Ok(dir)
}

/// The fleet configuration the benchmark runs: the standard heterogeneous
/// mix at a fleet-friendly scale (hundreds of concurrent-ish jobs stay
/// tractable well below the interactive default scale). `node_faults`
/// arms the standard seeded outage profile — the degraded-mode fleet.
pub fn bench_config(
    short: bool,
    scale: f64,
    jobs: Option<usize>,
    node_faults: bool,
) -> FleetConfig {
    let n_jobs = jobs.unwrap_or(if short { SHORT_JOBS } else { FULL_JOBS });
    if node_faults {
        FleetConfig::standard_with_node_faults(n_jobs, scale, 7)
    } else {
        FleetConfig::standard(n_jobs, scale, 7)
    }
}

/// Run the fleet at every driver configuration, assert byte-identity,
/// write `BENCH_fleet.json`, and return the rendered report for stdout.
pub fn run_fleet(
    short: bool,
    scale: f64,
    jobs: Option<usize>,
    node_faults: bool,
    spill: Option<&str>,
) -> Result<String, FleetError> {
    let scale = scale.clamp(0.005, 0.05);
    let mut cfg = bench_config(short, scale, jobs, node_faults);
    if let Some(dir) = spill {
        cfg.spill = Some(SpillSpec::clean(&validate_spill_dir(dir)?));
    }
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!(
        "fleet sweep: {} jobs at scale {scale}, cluster {} nodes, host has {host_cores} core(s)",
        cfg.n_jobs, cfg.cluster_nodes
    );

    recorder_sim::chunk::trace_gauge().reset();
    let t0 = Instant::now();
    let reference: FleetReport = fleet_sweep(&cfg, Driver::Sequential)?;
    let sequential_ns = t0.elapsed().as_nanos() as u64;
    let ref_render = reference.render();
    eprintln!(
        "  sequential            : {:>9.2} ms",
        sequential_ns as f64 / 1e6
    );

    let mut timings: Vec<(String, usize, u64)> = vec![("sequential".to_string(), 1, sequential_ns)];
    for workers in [1usize, 2, 8] {
        par::set_threads(workers);
        let t = Instant::now();
        let report = fleet_sweep(&cfg, Driver::Parallel)?;
        let ns = t.elapsed().as_nanos() as u64;
        par::set_threads(0);
        assert_eq!(
            report.render(),
            ref_render,
            "fleet report diverged from sequential at {workers} workers"
        );
        eprintln!(
            "  parallel-{workers} ({workers} workers): {:>9.2} ms",
            ns as f64 / 1e6
        );
        timings.push((format!("parallel-{workers}"), workers, ns));
    }
    eprintln!(
        "  8-worker speedup vs sequential: {:.2}x (reports byte-identical across all configs)",
        sequential_ns as f64 / timings.last().map(|(_, _, ns)| *ns).unwrap_or(1).max(1) as f64
    );

    // High-water mark of decoded trace bytes across every job of every
    // driver run above. With streaming per-job analysis this is bounded by
    // the chunk ring per concurrent worker, not by fleet size or trace
    // length — the number demonstrating the 10⁴-job claim.
    let peak_trace = recorder_sim::chunk::trace_gauge().peak();
    eprintln!(
        "  peak resident trace bytes: {peak_trace} ({:.1} KiB/worker bound with {host_cores} cores)",
        peak_trace as f64 / 1024.0 / host_cores.max(1) as f64
    );

    // The `node_faults` config key appears only when the flag is armed,
    // keeping the healthy BENCH_fleet.json bit-identical to the
    // pre-failure-domain output (asserted by tests/fleet_resilience.rs).
    let mut config_members = vec![
        (
            "mode",
            Json::Str(if short { "short" } else { "full" }.into()),
        ),
        ("n_jobs", Json::Int(cfg.n_jobs as i128)),
        ("scale", Json::Float(scale)),
        ("host_cores", Json::Int(host_cores as i128)),
    ];
    if node_faults {
        config_members.push(("node_faults", Json::Bool(true)));
    }
    // Likewise the `spill` key: absent unless the fleet spilled, keeping
    // the in-memory BENCH_fleet.json byte-stable.
    if let Some(dir) = spill {
        config_members.push(("spill", Json::Str(dir.to_string())));
    }
    let json = Json::obj([
        ("config", Json::obj(config_members)),
        (
            "drivers",
            Json::Arr(
                timings
                    .iter()
                    .map(|(name, workers, ns)| {
                        Json::obj([
                            ("config", Json::Str(name.clone())),
                            ("workers", Json::Int(*workers as i128)),
                            ("total_ns", Json::Int(*ns as i128)),
                            (
                                "speedup_vs_sequential",
                                Json::Float(sequential_ns as f64 / (*ns).max(1) as f64),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("byte_identical_across_configs", Json::Bool(true)),
        ("peak_resident_trace_bytes", Json::Int(peak_trace as i128)),
        ("report", reference.to_json()),
    ]);
    let out = format!("{}\n", json.render());
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fleet.json");
    std::fs::write(path, out).expect("write BENCH_fleet.json");
    eprintln!("wrote {path}");

    Ok(ref_render)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_jobs_accepts_positive_integers() {
        assert_eq!(parse_jobs("1"), Ok(1));
        assert_eq!(parse_jobs("10000"), Ok(10000));
    }

    #[test]
    fn parse_jobs_rejects_zero_and_garbage_with_typed_errors() {
        for bad in ["0", "-3", "ten", "", "1.5", "1e3", "+ 4"] {
            match parse_jobs(bad) {
                Err(FleetError::InvalidJobs { arg }) => {
                    assert_eq!(arg, bad);
                    let msg = FleetError::InvalidJobs { arg }.to_string();
                    assert!(
                        msg.contains("--jobs"),
                        "usage message names the flag: {msg}"
                    );
                }
                other => panic!("`{bad}` must be InvalidJobs, got {other:?}"),
            }
        }
    }

    #[test]
    fn spill_dir_validation_rejects_missing_and_non_directory_paths() {
        match validate_spill_dir("/nonexistent/vani/spill/dir") {
            Err(FleetError::InvalidSpillDir { dir, detail }) => {
                assert_eq!(dir, "/nonexistent/vani/spill/dir");
                assert!(detail.contains("cannot stat"), "detail: {detail}");
            }
            other => panic!("missing dir must be InvalidSpillDir, got {other:?}"),
        }
        let file = std::env::temp_dir().join("vani-spill-not-a-dir.txt");
        std::fs::write(&file, b"x").expect("write probe file");
        match validate_spill_dir(file.to_str().expect("utf8 temp path")) {
            Err(FleetError::InvalidSpillDir { detail, .. }) => {
                assert_eq!(detail, "not a directory");
            }
            other => panic!("file path must be InvalidSpillDir, got {other:?}"),
        }
        std::fs::remove_file(&file).expect("cleanup");
    }

    #[test]
    fn spill_dir_validation_accepts_a_writable_directory() {
        let dir = std::env::temp_dir().join("vani-spill-ok");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let ok = validate_spill_dir(dir.to_str().expect("utf8 temp path"))
            .expect("writable dir validates");
        assert_eq!(ok, dir);
        assert!(
            !dir.join(".vani-spill-probe").exists(),
            "probe file is removed after validation"
        );
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn spill_errors_render_with_the_flag_name() {
        let e = FleetError::InvalidSpillDir {
            dir: "/tmp/x".to_string(),
            detail: "not a directory".to_string(),
        };
        let msg = e.to_string();
        assert!(
            msg.contains("--spill"),
            "usage message names the flag: {msg}"
        );
        assert!(msg.contains("/tmp/x"));
    }

    #[test]
    fn node_faults_flag_arms_an_active_plan_without_touching_the_mix() {
        let healthy = bench_config(true, 0.02, None, false);
        let degraded = bench_config(true, 0.02, None, true);
        assert_eq!(healthy.mix, degraded.mix);
        assert_eq!(healthy.node_faults, vani_core::tenancy::NodeFaultSpec::None);
        assert!(matches!(
            degraded.node_faults,
            vani_core::tenancy::NodeFaultSpec::Profile(_)
        ));
    }
}
