#!/usr/bin/env bash
# Tier-1 verification, fully offline (see DESIGN.md, "Hermeticity").
#
# --offline proves the zero-external-dependency invariant: the build must
# succeed with an empty registry cache. --workspace is required because the
# root package (vani-suite) does not depend on the `bench` crate, so a plain
# `cargo build` at the root would silently skip it.
set -euo pipefail
cd "$(dirname "$0")"

# Formatting is a gate, not a suggestion: the whole tree is rustfmt-clean
# as of the failure-domain PR, and drift compounds fast in a repo this
# cross-cutting.
cargo fmt --check

# Warnings are errors in CI: the crash-recovery plane threads state through
# many layers, and an unused field or import is usually a wiring mistake.
RUSTFLAGS="-D warnings" cargo build --release --offline --workspace
cargo test -q --offline --workspace
cargo bench -q --offline -p bench --no-run

# bench-smoke: exercise the analyzer old-vs-new harness end to end in its
# short mode. Regenerates BENCH_analyzer.json at the repo root and asserts
# (inside the binary) that the fused, multipass, and streaming profiles
# stay equal on every measured trace, and that the streaming analyzer's
# peak resident trace bytes never exceed the chunk-ring budget
# (resident_bound(DEFAULT_CHUNK_ROWS, RING_SLOTS)). A regression in either
# invariant fails this step.
cargo run --release --offline -p bench --bin bench_analyzer -- --short

# Codec property suite: seeded adversarial column shapes (random, constant,
# runs, ramps, width-boundary extremes) round-trip bit-exactly through the
# delta/RLE/raw codec, the recycled-buffer decoder, hex transport, sealed
# chunks, and chunked traces at every chunk size; corrupt buffers surface
# typed errors instead of decoding.
cargo test --release --offline --test codec_roundtrip

# Streaming-vs-fused suite: the bounded-memory streaming analyzer is
# byte-identical to the fused single-pass profile on all seven exemplar
# workloads, clean and faulted, at 1/2/8 workers and several chunk sizes;
# live chunked capture equals batch conversion; peak resident trace bytes
# stay under the ring bound; the adaptive sampler is off by default and
# deterministic when budgeted.
cargo test --release --offline --test streaming_vs_fused

# pipeline bench-smoke: the scenario-parallel sweep driver end to end in
# short mode. Regenerates BENCH_pipeline.json and fails (inside the
# binary) if parallel output diverges from the sequential driver at any
# worker count, or if the direct and emulated-legacy capture paths ever
# produce different columns.
cargo run --release --offline -p bench --bin repro -- bench-pipeline --short

# Sweep byte-identity suite: tables, YAML, and the fault report pinned
# equal between sequential and parallel drivers at 1/2/8 workers, with and
# without an active FaultPlan.
cargo test --release --offline --test sweep_parallel_vs_sequential

# Failure-injection suite, run explicitly: typed errors surface cleanly
# through every layer and deadlocks come back as rank → gate diagnostics.
cargo test --release --offline --test failure_injection

# fault-sweep smoke: the deterministic fault plane end to end. The suite
# asserts the CosmoFlow-vs-HACC MDS-brownout ordering (metadata-bound
# degrades >= 2x more), the NSD-outage bandwidth cost, and that preload-
# to-shm shields the training read path from PFS faults.
cargo test --release --offline --test fault_sweep

# Crash-recovery suite: checkpoint/restart byte-identity at 1/2/8 workers
# (with and without an extra degradation plan), the crash-sweep tradeoff
# report, and supervised sweeps isolating a panicking scenario.
cargo test --release --offline --test crash_recovery

# Trace-salvage suite: truncated and corrupted row-group captures recover
# their longest consistent prefix, the fused and multipass analyzers agree
# on salvaged columns, and the YAML completeness annotation appears.
cargo test --release --offline --test trace_salvage

# fleet-sweep smoke: the multi-tenant datacenter mode end to end in short
# mode (64 jobs). Regenerates BENCH_fleet.json and fails (inside the
# binary) if the rendered fleet report diverges from the sequential driver
# at any worker count; invalid mixes exit 2 with a typed FleetError.
cargo run --release --offline -p bench --bin repro -- fleet-sweep --short

# Fleet suite: manifest/admission/report byte-identity at 1/2/8 workers
# with and without active FaultPlans, single-tenant fleet byte-equal to
# the dedicated run, and typed errors for bad fleet configurations.
cargo test --release --offline --test fleet_sweep

# Fleet failure-domain suite: with an active NodeFaultPlan the degraded
# report (outage timeline, goodput accounting, retry outcomes) is
# byte-identical at 1/2/8 workers; with an empty plan the render and JSON
# are FNV-pinned bit-identical to the pre-failure-domain fleet; a killed
# job completes after requeue with its lost work charged, and a job past
# its retry budget is abandoned without being simulated.
cargo test --release --offline --test fleet_resilience

# Spill identity suite: spill-capture -> recover -> off-disk streaming
# analysis is bit-identical to the in-memory fused profile on all seven
# exemplars, clean and faulted, at 1/2/8 workers and two chunk sizes; a
# v3 log loads through every v1/v2 persistence entry point; capture and
# analysis stay under the chunk-ring resident bound.
cargo test --release --offline --test spill_identity

# Spill torture suite: every injected fault class (torn final write,
# partial append, ENOSPC, bit flip, crash-before-commit) at several
# target chunks recovers the longest committed prefix with a typed
# diagnostic — never a panic — and analyzing the recovered prefix off
# disk equals in-memory streaming over the same records at 1/2/8
# workers. ENOSPC leaves no temp-file litter.
cargo test --release --offline --test spill_torture

# Persistence corruption property suite: seeded random truncations and
# bit flips over all three trace generations (v1 row-group JSON, v2
# chunked JSON, v3 binary spill log) never panic any loader — typed
# errors or honest-prefix salvage only — and a checksum-fixed meta
# mutation is caught by deep verification as codec-class damage.
cargo test --release --offline --test persist_corruption

# fleet-sweep spill smoke: the short fleet with every per-job trace
# staged through an on-disk spill log. The report gains the spill
# durability section (all records durable on a clean run) and the job
# logs land in the scratch directory; exits non-zero on any divergence.
spill_dir="$(mktemp -d)"
cargo run --release --offline -p bench --bin repro -- fleet-sweep --short --spill "$spill_dir" > /dev/null
rm -rf "$spill_dir"

echo "ci: OK"
