//! Quickstart: run one exemplar workload on the simulated Lassen stack,
//! characterize it with the Vani analyzer, and print its attributes and
//! the optimizer's recommendations.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use vani_suite::vani::analyzer::Analysis;
use vani_suite::vani::{optimizer, tables, yaml};

fn main() {
    // 1. Run HACC-IO at 5 % of the paper's scale (seconds, not minutes).
    let run = vani_suite::workloads::hacc::run(0.05, 42);
    println!(
        "HACC-IO finished: simulated runtime {:.2}s, {} trace records",
        run.runtime().as_secs_f64(),
        run.world.tracer.len()
    );

    // 2. Characterize: extract the paper's entities and attributes.
    let analysis = Analysis::from_run(&run);
    println!(
        "interface={}  files={} (shared {}, fpp {})  read={}  write={}  meta-op share={:.0}%",
        analysis.interface,
        analysis.n_files(),
        analysis.shared_files(),
        analysis.fpp_files(),
        sim_core::units::fmt_bytes(analysis.read_bytes),
        sim_core::units::fmt_bytes(analysis.write_bytes),
        (1.0 - analysis.data_frac()) * 100.0
    );

    // 3. Emit the machine-readable characterization (what a workload-aware
    //    storage system would consume).
    let entities = tables::entities_for(&analysis);
    println!("\n--- YAML characterization ---\n{}", yaml::emit(&entities));

    // 4. Ask the optimizer what the storage system should do.
    println!("--- recommendations ---");
    for advice in optimizer::recommend(&analysis) {
        println!(
            "* {:<28} because {}",
            advice.recommendation.name(),
            advice.rationale
        );
    }
}
