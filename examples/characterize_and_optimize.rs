//! The paper's §V-A use case end to end: run CosmoFlow over GPFS, let the
//! analyzer find the metadata storm, let the optimizer recommend the
//! preload-to-shm reconfiguration, apply it, and measure the speedup.
//!
//! ```text
//! cargo run --release --example characterize_and_optimize
//! ```

use vani_suite::vani::analyzer::Analysis;
use vani_suite::vani::optimizer::{self, Recommendation};
use vani_suite::workloads::cosmoflow;

fn main() {
    let scale = 0.05;
    let mut params = cosmoflow::CosmoflowParams::scaled(scale);
    params.nodes = 16;

    // Baseline over GPFS.
    println!("running CosmoFlow baseline (HDF5 over MPI-IO on GPFS) ...");
    let baseline = cosmoflow::run_with(params.clone(), scale, 7);
    let base = Analysis::from_run(&baseline);
    println!(
        "baseline: runtime {:.1}s, per-rank I/O time {:.2}s, metadata ops {} vs data ops {}",
        base.job_time.as_secs_f64(),
        base.io_time(),
        base.meta_ops,
        base.data_ops
    );

    // Characterize → recommend.
    let advice = optimizer::recommend(&base);
    for a in &advice {
        println!("advice: {:<28} ({})", a.recommendation.name(), a.rationale);
    }
    let preload = advice
        .iter()
        .find(|a| matches!(a.recommendation, Recommendation::PreloadDatasetToShm { .. }))
        .expect("the analyzer should fire the §V-A rule on CosmoFlow");
    if let Recommendation::PreloadDatasetToShm { per_node_bytes } = preload.recommendation {
        println!(
            "applying preload: {} per node into /dev/shm",
            sim_core::units::fmt_bytes(per_node_bytes)
        );
    }

    // Apply the recommendation and re-run.
    let mut optimized_params = params;
    optimized_params.preload_to_shm = true;
    let optimized = cosmoflow::run_with(optimized_params, scale, 7);
    let opt = Analysis::from_run(&optimized);
    println!(
        "optimized: runtime {:.1}s, per-rank I/O time {:.2}s",
        opt.job_time.as_secs_f64(),
        opt.io_time()
    );
    println!(
        "I/O-time speedup: {:.2}x (the paper reports 2.2x-4.6x across 32-256 nodes)",
        base.io_time() / opt.io_time()
    );
}
