//! Using the substrate as a library: define a custom three-kernel
//! workflow, execute it with the pegasus-mpi-cluster-style work queue over
//! the simulated cluster, and characterize its I/O.
//!
//! ```text
//! cargo run --release --example custom_workflow
//! ```

use std::cell::RefCell;
use std::rc::Rc;
use vani_suite::cluster::engine::{GateId, Outcome, RankScript, StepEffect};
use vani_suite::cluster::topology::RankId;
use vani_suite::layers::posix::{self, OpenFlags};
use vani_suite::layers::world::IoWorld;
use vani_suite::sim::{Dur, SimTime};
use vani_suite::workflow::dag::{Dag, Task, TaskId};
use vani_suite::workflow::queue::WorkQueue;

/// Build a tiny "generate → transform → merge" workflow.
fn build_dag(n: u32) -> Dag {
    let mut g = Dag::new();
    for i in 0..n {
        g.add(Task {
            name: format!("gen_{i}"),
            app: "generator".into(),
            inputs: vec![],
            outputs: vec![format!("/p/gpfs1/wf/raw_{i}.bin")],
        });
    }
    for i in 0..n {
        g.add(Task {
            name: format!("xform_{i}"),
            app: "transform".into(),
            inputs: vec![format!("/p/gpfs1/wf/raw_{i}.bin")],
            outputs: vec![format!("/p/gpfs1/wf/cooked_{i}.bin")],
        });
    }
    g.add(Task {
        name: "merge".into(),
        app: "merge".into(),
        inputs: (0..n)
            .map(|i| format!("/p/gpfs1/wf/cooked_{i}.bin"))
            .collect(),
        outputs: vec!["/p/gpfs1/wf/result.bin".into()],
    });
    g.infer_edges_from_files();
    g
}

struct Worker {
    q: Rc<RefCell<WorkQueue>>,
    pending: Option<TaskId>,
}

impl RankScript<IoWorld> for Worker {
    fn next_step(&mut self, w: &mut IoWorld, rank: RankId, now: SimTime) -> StepEffect {
        if let Some(tid) = self.pending.take() {
            let mut q = self.q.borrow_mut();
            let newly = q.complete(tid);
            let bumped = !newly.is_empty() || q.all_done();
            let gate = q.gate_to_open_after_complete();
            drop(q);
            let mut eff = StepEffect::busy_until(now);
            if bumped {
                eff.open_gates.push(GateId(gate));
            }
            return eff;
        }
        let claim = self.q.borrow_mut().try_claim();
        match claim {
            Some(tid) => {
                let (app, inputs, outputs) = {
                    let q = self.q.borrow();
                    let t = q.dag().task(tid);
                    (t.app.clone(), t.inputs.clone(), t.outputs.clone())
                };
                w.set_app(rank, &app);
                let mut t = w.compute(rank, Dur::from_millis(50), now);
                for input in &inputs {
                    let (fd, t2) = posix::open(w, rank, input, OpenFlags::read_only(), t);
                    let (_, t3) = posix::read(w, rank, fd.unwrap(), 1 << 20, t2);
                    let (_, t4) = posix::close(w, rank, fd.unwrap(), t3);
                    t = t4;
                }
                for output in &outputs {
                    let (fd, t2) = posix::open(w, rank, output, OpenFlags::write_create(), t);
                    let (_, t3) = posix::write_pattern(w, rank, fd.unwrap(), 1 << 20, 7, t2);
                    let (_, t4) = posix::close(w, rank, fd.unwrap(), t3);
                    t = t4;
                }
                self.pending = Some(tid);
                StepEffect::busy_until(t)
            }
            None => {
                let q = self.q.borrow();
                if q.all_done() {
                    StepEffect::done()
                } else {
                    StepEffect {
                        outcome: Outcome::WaitGate(GateId(q.wake_gate())),
                        open_gates: vec![],
                    }
                }
            }
        }
    }
}

fn main() {
    let dag = build_dag(8);
    println!(
        "workflow: {} tasks across {} kernels, critical path {} levels",
        dag.len(),
        dag.app_names().len(),
        dag.critical_path_len()
    );
    let world = IoWorld::lassen(2, 4, Dur::from_secs(600), 11);
    let q = Rc::new(RefCell::new(WorkQueue::new(dag, 1 << 40)));
    let scripts: Vec<Box<dyn RankScript<IoWorld>>> = (0..8)
        .map(|_| {
            Box::new(Worker {
                q: Rc::clone(&q),
                pending: None,
            }) as Box<_>
        })
        .collect();
    let cost = vani_suite::cluster::mpi::MpiCostModel::from_node(
        &vani_suite::cluster::topology::ClusterSpec::lassen().node,
    );
    let mut engine = vani_suite::cluster::engine::Engine::new(world, scripts, cost);
    let report = engine.run().expect("workflow must not deadlock");
    println!(
        "workflow completed in {:.3}s simulated",
        report.makespan.as_secs_f64()
    );
    let world = engine.into_world();
    println!("trace: {} records", world.tracer.len());
    assert!(world
        .storage
        .pfs()
        .store()
        .lookup("/p/gpfs1/wf/result.bin")
        .is_some());
    println!("final output exists on the PFS — workflow dependencies held.");
}
