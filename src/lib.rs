//! Umbrella crate for the vani-rs suite: re-exports the public API of every
//! member crate so examples and integration tests can use one import root.
pub use exemplar_workloads as workloads;
pub use hpc_cluster as cluster;
pub use io_layers as layers;
pub use recorder_sim as recorder;
pub use sim_core as sim;
pub use storage_sim as storage;
pub use vani_core as vani;
pub use vani_rt as rt;
pub use workflow_engine as workflow;
